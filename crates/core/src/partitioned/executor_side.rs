//! Executor-side local clustering with SEED placement — Algorithms 2
//! (lines 4–29) and 3 of the paper.
//!
//! The executor owns one contiguous index range. It expands clusters
//! with the usual queue-based DBSCAN, **but only through points it
//! owns**: when the queue yields a *foreign* index the executor never
//! expands it — it either records it as a SEED member (first time that
//! foreign partition is touched by this cluster, under the paper's
//! [`SeedPolicy::OnePerPartition`]) or skips it. Neighborhoods are
//! computed over the **full broadcast dataset**, so core status is
//! globally exact even though expansion is local.
//!
//! Data structures: the paper's §III-B uses a Java `Hashtable` for
//! visited state and a `LinkedList` queue for candidates. We keep the
//! FIFO queue (`VecDeque`) but replace the hashtable with **dense
//! per-partition arrays** indexed by local offset: the executor only
//! ever marks its own `[start, end)` points, so an `O(1)` array probe
//! beats hashing — and keeps per-point cost independent of partition
//! size (a `HashSet` sized to the whole partition penalizes the
//! 1-partition baseline through cache misses and would *inflate* the
//! reported speedups).

use crate::model::{PartialCluster, PartitionRanges};
use crate::params::DbscanParams;
use crate::partitioned::SeedPolicy;
use dbscan_spatial::{
    BkdTree, KernelConfig, KernelCounters, PointId, PruneConfig, QueryScratch, SpatialIndex,
};
use std::collections::{HashSet, VecDeque};

/// Instrumentation returned with each executor's result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Points of the own range processed at the top level.
    pub points_processed: usize,
    /// eps-neighborhood queries issued.
    pub neighbor_queries: usize,
    /// Total neighbors returned across all queries — the executor's
    /// real scan effort (what the cost planner predicts), unlike
    /// `neighbor_queries`, which just tracks partition size.
    pub neighbors_found: usize,
    /// Own points found noise at the top level (may become borders of
    /// other partitions' clusters after the merge).
    pub local_noise: usize,
    /// SEEDs placed across all partial clusters.
    pub seeds_placed: usize,
    /// Kernel-level instrumentation of the task's queries (leaf blocks
    /// scanned, rows of those blocks, hits, early exits). Unlike every
    /// field above — which is invariant across *all* kernel
    /// configurations — the counters legitimately shrink when the
    /// `min_pts` count fast path prunes traversals; compare through
    /// [`ExecutorStats::without_kernel`] in identity tests that enable
    /// it.
    pub kernel: KernelCounters,
}

impl ExecutorStats {
    /// This stats value with the kernel counters zeroed — the part
    /// that must be byte-identical across every kernel configuration,
    /// count fast path included.
    pub fn without_kernel(mut self) -> Self {
        self.kernel = KernelCounters::default();
        self
    }
}

/// One executor's output: its partial clusters, the core points it
/// certified, and stats.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalClustering {
    /// Partial clusters (with SEEDs), in creation order.
    pub clusters: Vec<PartialCluster>,
    /// Global indices of own points that are core points.
    pub core_points: Vec<u32>,
    /// Instrumentation.
    pub stats: ExecutorStats,
}

/// Reusable executor working state, epoch-stamped so nothing is
/// cleared (or reallocated) between tasks.
///
/// The per-partition `visited`/`assigned` arrays are validated by an
/// epoch stamp: an entry belongs to the current task iff its stamp
/// equals the task's epoch, so "clearing" them is a single counter
/// bump. The expansion queue, neighbor buffer and Algorithm-3 seed
/// tables likewise persist at their high-water capacity across every
/// partial cluster and every task the executor runs.
#[derive(Debug, Default)]
pub struct ExecutorScratch {
    /// Current task epoch; array entries are live iff stamped with it.
    epoch: u32,
    /// visited\[i\] iff `visited_epoch[i] == epoch`.
    visited_epoch: Vec<u32>,
    /// Point `i` already belongs to a cluster of this task iff
    /// `assigned_epoch[i] == epoch` (first assignment wins; *which*
    /// cluster claimed it lives in the cluster's member list).
    assigned_epoch: Vec<u32>,
    /// FIFO expansion queue (Algorithm 2), reused across clusters.
    queue: VecDeque<u32>,
    /// Neighborhood query buffer, reused across all queries.
    nbuf: Vec<PointId>,
    /// Algorithm 3's `place_flg`, stamped by `seed_stamp` — an entry
    /// belongs to the current cluster iff it holds the cluster's stamp.
    seeded_partition_stamp: Vec<u64>,
    /// Monotonic per-cluster stamp; never reused across tasks, so the
    /// partition table survives task boundaries without clearing.
    seed_stamp: u64,
    /// `(slot, point)` pairs already seeded under `PerBoundaryEdge`.
    seeded_points: HashSet<u64>,
    /// Frontier chunk drained from `queue` (batched expansion).
    chunk: Vec<u32>,
    /// Chunk members that still need a neighborhood query this round.
    pending: Vec<u32>,
    /// Concatenated batch-query results.
    batch_out: Vec<PointId>,
    /// Per-pending-query (offset, len) into `batch_out`.
    spans: Vec<(u32, u32)>,
}

impl ExecutorScratch {
    /// Fresh scratch (first task pays the allocations).
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a task over `local_n` points and `partitions` partitions:
    /// bump the epoch and grow (never shrink) the arrays.
    fn begin_task(&mut self, local_n: usize, partitions: usize) {
        if self.epoch == u32::MAX {
            // epoch wrap: hard-reset the stamps once every 2^32 tasks
            self.visited_epoch.iter_mut().for_each(|s| *s = 0);
            self.assigned_epoch.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        if self.visited_epoch.len() < local_n {
            self.visited_epoch.resize(local_n, 0);
            self.assigned_epoch.resize(local_n, 0);
        }
        if self.seeded_partition_stamp.len() < partitions {
            self.seeded_partition_stamp.resize(partitions, 0);
        }
        // slots restart at 0 each task, so the (slot, point) key set
        // must not leak across tasks; clearing keeps its capacity
        self.seeded_points.clear();
        self.queue.clear();
    }

    /// High-water capacity of the visited array (test hook).
    pub fn capacity(&self) -> usize {
        self.visited_epoch.len()
    }
}

/// Where the executor gets eps-neighborhoods from. The object-level
/// contract is [`NeighborSource::neighbors_of`]; the batched and
/// count-only entry points have *defaults* expressed in terms of it, so
/// any closure source (via the blanket `FnMut` impl) works with every
/// expansion strategy, while [`TreeNeighborSource`] overrides them with
/// the genuinely shared-work tree paths.
pub trait NeighborSource {
    /// Append the eps-neighborhood of point `q` over the **whole**
    /// dataset to `out` (which arrives cleared). The reported order
    /// must be deterministic — it decides SEED placement.
    fn neighbors_of(&mut self, q: u32, out: &mut Vec<PointId>);

    /// Neighborhoods of a whole frontier chunk: `out` and `spans` are
    /// cleared, then `spans[i] = (offset, len)` addresses query `i`'s
    /// slice of `out`. Per query, contents and order must equal
    /// [`NeighborSource::neighbors_of`] exactly.
    fn neighbors_batch(
        &mut self,
        ids: &[u32],
        out: &mut Vec<PointId>,
        spans: &mut Vec<(u32, u32)>,
    ) {
        out.clear();
        spans.clear();
        for &q in ids {
            let off = out.len() as u32;
            self.neighbors_of(q, out);
            spans.push((off, out.len() as u32 - off));
        }
    }

    /// Neighbor count of `q`, allowed to stop once `cap` is reached;
    /// any returned value **below** `cap` must be the exact count. The
    /// default pays a full materialized query.
    fn count_up_to(&mut self, q: u32, cap: usize) -> usize {
        let _ = cap;
        let mut tmp = Vec::new();
        self.neighbors_of(q, &mut tmp);
        tmp.len()
    }
}

impl<F: FnMut(u32, &mut Vec<PointId>)> NeighborSource for F {
    fn neighbors_of(&mut self, q: u32, out: &mut Vec<PointId>) {
        self(q, out)
    }
}

/// The production [`NeighborSource`]: the broadcast [`BkdTree`] plus a
/// worker's [`QueryScratch`]. Batched queries go through
/// [`BkdTree::query_batch`] when the prune configuration is exact (the
/// only case where deferring leaf scans is sound); core-status probes
/// go through [`BkdTree::count_up_to`] under the same condition.
pub struct TreeNeighborSource<'a> {
    tree: &'a BkdTree,
    scratch: &'a mut QueryScratch,
    eps: f64,
    prune: PruneConfig,
    /// Scratch for the pruned-configuration `count_up_to` fallback,
    /// which must reproduce the capped materialized query's count.
    count_buf: Vec<PointId>,
}

impl<'a> TreeNeighborSource<'a> {
    /// Wrap a broadcast tree and per-worker query scratch.
    pub fn new(
        tree: &'a BkdTree,
        scratch: &'a mut QueryScratch,
        eps: f64,
        prune: PruneConfig,
    ) -> Self {
        TreeNeighborSource { tree, scratch, eps, prune, count_buf: Vec::new() }
    }
}

impl NeighborSource for TreeNeighborSource<'_> {
    fn neighbors_of(&mut self, q: u32, out: &mut Vec<PointId>) {
        let row = self.tree.dataset().point(PointId(q));
        self.tree.range_pruned_scratch(row, self.eps, self.prune, self.scratch, out);
    }

    fn neighbors_batch(
        &mut self,
        ids: &[u32],
        out: &mut Vec<PointId>,
        spans: &mut Vec<(u32, u32)>,
    ) {
        if self.prune == PruneConfig::EXACT {
            self.tree.query_batch(ids, self.eps, self.scratch, out, spans);
        } else {
            // pruned traversals carry per-query state; run them one at
            // a time with the exact scalar semantics
            out.clear();
            spans.clear();
            for &q in ids {
                let off = out.len() as u32;
                self.neighbors_of(q, out);
                spans.push((off, out.len() as u32 - off));
            }
        }
    }

    fn count_up_to(&mut self, q: u32, cap: usize) -> usize {
        let row = self.tree.dataset().point(PointId(q));
        if self.prune == PruneConfig::EXACT {
            self.tree.count_up_to(row, self.eps, cap, self.scratch)
        } else {
            // a pruned query's neighbor count is defined by the pruned
            // traversal itself — reproduce it exactly
            self.count_buf.clear();
            let buf = &mut self.count_buf;
            self.tree.range_pruned_scratch(row, self.eps, self.prune, self.scratch, buf);
            buf.len()
        }
    }
}

/// Run Algorithms 2+3 for one partition with throwaway scratch.
///
/// `neighbors_of(idx, out)` must append the eps-neighborhood of point
/// `idx` over the **whole** dataset (the broadcast kd-tree query); `out`
/// arrives cleared.
pub fn local_partial_clusters(
    neighbors_of: impl FnMut(u32, &mut Vec<PointId>),
    params: DbscanParams,
    ranges: &PartitionRanges,
    partition: usize,
    seed_policy: SeedPolicy,
) -> LocalClustering {
    let mut scratch = ExecutorScratch::new();
    local_partial_clusters_scratch(
        neighbors_of,
        params,
        ranges,
        partition,
        seed_policy,
        &mut scratch,
    )
}

/// [`local_partial_clusters`] against caller-owned scratch, the hot
/// path for executors that process many partitions: steady-state tasks
/// allocate nothing but the output itself.
pub fn local_partial_clusters_scratch(
    mut neighbors_of: impl FnMut(u32, &mut Vec<PointId>),
    params: DbscanParams,
    ranges: &PartitionRanges,
    partition: usize,
    seed_policy: SeedPolicy,
    scratch: &mut ExecutorScratch,
) -> LocalClustering {
    let (start, end) = ranges.range(partition);
    let owner = partition as u32;
    let local_n = (end - start) as usize;

    scratch.begin_task(local_n, ranges.num_partitions());
    let epoch = scratch.epoch;
    let ExecutorScratch {
        visited_epoch,
        assigned_epoch,
        queue,
        nbuf,
        seeded_partition_stamp,
        seed_stamp,
        seeded_points,
        ..
    } = scratch;

    let mut clusters: Vec<PartialCluster> = Vec::new();
    let mut core_points: Vec<u32> = Vec::new();
    let mut stats = ExecutorStats::default();

    for p in start..end {
        let pl = (p - start) as usize;
        stats.points_processed += 1;
        if visited_epoch[pl] == epoch {
            continue;
        }
        visited_epoch[pl] = epoch;
        nbuf.clear();
        neighbors_of(p, nbuf);
        stats.neighbor_queries += 1;
        stats.neighbors_found += nbuf.len();
        if nbuf.len() < params.min_pts {
            // Algorithm 2 line 9: "mark p as noise" (it may later be
            // claimed as a border point by an expanding cluster)
            stats.local_noise += 1;
            continue;
        }

        // Algorithm 2 line 8: create a new cluster C and add p to it
        let slot = clusters.len() as u32;
        *seed_stamp += 1;
        let stamp = *seed_stamp;
        let mut cluster = PartialCluster::new(owner, (start, end));
        cluster.members.push(p);
        assigned_epoch[pl] = epoch;
        core_points.push(p);

        queue.clear();
        queue.extend(nbuf.iter().map(|id| id.0).filter(|&r| {
            // own points that are already visited *and* assigned have
            // nothing left to do at dequeue — don't enqueue them at all
            !(r >= start && r < end && {
                let rl = (r - start) as usize;
                visited_epoch[rl] == epoch && assigned_epoch[rl] == epoch
            })
        }));
        while let Some(q) = queue.pop_front() {
            if q < start || q >= end {
                // foreign point: SEED placement (Algorithm 3), never
                // expanded — "each executor only computes the points
                // that belong to it"
                let place = match seed_policy {
                    SeedPolicy::OnePerPartition => {
                        let pt = ranges.partition_of(q);
                        let fresh = seeded_partition_stamp[pt] != stamp;
                        seeded_partition_stamp[pt] = stamp;
                        fresh
                    }
                    SeedPolicy::PerBoundaryEdge => {
                        seeded_points.insert((slot as u64) << 32 | q as u64)
                    }
                };
                if place {
                    cluster.members.push(q);
                    stats.seeds_placed += 1;
                }
                continue;
            }
            let ql = (q - start) as usize;
            if visited_epoch[ql] == epoch {
                // Algorithm 2 lines 20-22: add to C if not yet a member
                // of any cluster (border-point claim)
                if assigned_epoch[ql] != epoch {
                    assigned_epoch[ql] = epoch;
                    cluster.members.push(q);
                }
                continue;
            }
            // Algorithm 2 lines 13-19: visit q, claim it, test core status
            visited_epoch[ql] = epoch;
            if assigned_epoch[ql] != epoch {
                assigned_epoch[ql] = epoch;
                cluster.members.push(q);
            }
            nbuf.clear();
            neighbors_of(q, nbuf);
            stats.neighbor_queries += 1;
            stats.neighbors_found += nbuf.len();
            if nbuf.len() >= params.min_pts {
                core_points.push(q);
                queue.extend(nbuf.iter().map(|id| id.0).filter(|&r| {
                    !(r >= start && r < end && {
                        let rl = (r - start) as usize;
                        visited_epoch[rl] == epoch && assigned_epoch[rl] == epoch
                    })
                }));
            }
        }
        clusters.push(cluster);
    }

    LocalClustering { clusters, core_points, stats }
}

/// [`local_partial_clusters_scratch`] parameterized by a
/// [`NeighborSource`] and a [`KernelConfig`]: `kernel.batch > 0` drains
/// the BFS frontier in chunks and issues batched neighborhood queries;
/// `kernel.count_fast_path` settles non-core points with an early-exit
/// count instead of a materialized neighbor list. With both off this
/// *is* the scalar loop.
///
/// Every configuration is **byte-identical** to the scalar path — same
/// clusters, member order, core points, SEEDs and stats (fast path
/// excepted on [`ExecutorStats::kernel`] only):
///
/// * A chunk is classified strictly in FIFO order, so member pushes,
///   SEED placements and visited/assigned transitions replay the
///   scalar dequeue sequence; expansions append to the queue in chunk
///   order, exactly where the scalar loop appends them.
/// * Deferring an expansion behind later chunk classifications can only
///   *drop* enqueues the scalar path would also neutralize: the enqueue
///   filter rejects visited-and-assigned points, and such a point's
///   scalar dequeue is a no-op.
/// * A non-core point's early-exit count never reaches `min_pts`, so it
///   is the exact neighborhood size — `neighbors_found` is unchanged.
///   Core points still pay the full query that drives expansion.
pub fn local_partial_clusters_source<S: NeighborSource>(
    source: &mut S,
    params: DbscanParams,
    ranges: &PartitionRanges,
    partition: usize,
    seed_policy: SeedPolicy,
    scratch: &mut ExecutorScratch,
    kernel: KernelConfig,
) -> LocalClustering {
    if kernel.batch == 0 && !kernel.count_fast_path {
        return local_partial_clusters_scratch(
            |q, out| source.neighbors_of(q, out),
            params,
            ranges,
            partition,
            seed_policy,
            scratch,
        );
    }

    let (start, end) = ranges.range(partition);
    let owner = partition as u32;
    let local_n = (end - start) as usize;

    scratch.begin_task(local_n, ranges.num_partitions());
    let epoch = scratch.epoch;
    let ExecutorScratch {
        visited_epoch,
        assigned_epoch,
        queue,
        nbuf,
        seeded_partition_stamp,
        seed_stamp,
        seeded_points,
        chunk,
        pending,
        batch_out,
        spans,
        ..
    } = scratch;

    let chunk_cap = kernel.batch.max(1);
    let fast = kernel.count_fast_path;
    let mut clusters: Vec<PartialCluster> = Vec::new();
    let mut core_points: Vec<u32> = Vec::new();
    let mut stats = ExecutorStats::default();

    for p in start..end {
        let pl = (p - start) as usize;
        stats.points_processed += 1;
        if visited_epoch[pl] == epoch {
            continue;
        }
        visited_epoch[pl] = epoch;
        stats.neighbor_queries += 1;
        if fast {
            // probe first: noise points settle with their exact count
            // (exact because the cap was never reached) and skip the
            // materialized query entirely
            let cnt = source.count_up_to(p, params.min_pts);
            if cnt < params.min_pts {
                stats.neighbors_found += cnt;
                stats.local_noise += 1;
                continue;
            }
            nbuf.clear();
            source.neighbors_of(p, nbuf);
            stats.neighbors_found += nbuf.len();
        } else {
            nbuf.clear();
            source.neighbors_of(p, nbuf);
            stats.neighbors_found += nbuf.len();
            if nbuf.len() < params.min_pts {
                stats.local_noise += 1;
                continue;
            }
        }

        let slot = clusters.len() as u32;
        *seed_stamp += 1;
        let stamp = *seed_stamp;
        let mut cluster = PartialCluster::new(owner, (start, end));
        cluster.members.push(p);
        assigned_epoch[pl] = epoch;
        core_points.push(p);

        queue.clear();
        queue.extend(nbuf.iter().map(|id| id.0).filter(|&r| {
            !(r >= start && r < end && {
                let rl = (r - start) as usize;
                visited_epoch[rl] == epoch && assigned_epoch[rl] == epoch
            })
        }));
        while !queue.is_empty() {
            // drain up to chunk_cap frontier items, classify in FIFO order
            chunk.clear();
            while chunk.len() < chunk_cap {
                match queue.pop_front() {
                    Some(q) => chunk.push(q),
                    None => break,
                }
            }
            pending.clear();
            for &q in chunk.iter() {
                if q < start || q >= end {
                    let place = match seed_policy {
                        SeedPolicy::OnePerPartition => {
                            let pt = ranges.partition_of(q);
                            let fresh = seeded_partition_stamp[pt] != stamp;
                            seeded_partition_stamp[pt] = stamp;
                            fresh
                        }
                        SeedPolicy::PerBoundaryEdge => {
                            seeded_points.insert((slot as u64) << 32 | q as u64)
                        }
                    };
                    if place {
                        cluster.members.push(q);
                        stats.seeds_placed += 1;
                    }
                    continue;
                }
                let ql = (q - start) as usize;
                if visited_epoch[ql] == epoch {
                    if assigned_epoch[ql] != epoch {
                        assigned_epoch[ql] = epoch;
                        cluster.members.push(q);
                    }
                    continue;
                }
                visited_epoch[ql] = epoch;
                if assigned_epoch[ql] != epoch {
                    assigned_epoch[ql] = epoch;
                    cluster.members.push(q);
                }
                pending.push(q);
            }
            if fast {
                // count probes retire non-core points; survivors keep
                // their chunk order for the materialized batch below
                let mut keep = 0usize;
                for i in 0..pending.len() {
                    let q = pending[i];
                    let cnt = source.count_up_to(q, params.min_pts);
                    if cnt >= params.min_pts {
                        pending[keep] = q;
                        keep += 1;
                    } else {
                        stats.neighbor_queries += 1;
                        stats.neighbors_found += cnt;
                    }
                }
                pending.truncate(keep);
            }
            if pending.is_empty() {
                continue;
            }
            source.neighbors_batch(pending, batch_out, spans);
            for (i, &q) in pending.iter().enumerate() {
                let (off, len) = spans[i];
                let span = &batch_out[off as usize..(off + len) as usize];
                stats.neighbor_queries += 1;
                stats.neighbors_found += span.len();
                if span.len() >= params.min_pts {
                    core_points.push(q);
                    queue.extend(span.iter().map(|id| id.0).filter(|&r| {
                        !(r >= start && r < end && {
                            let rl = (r - start) as usize;
                            visited_epoch[rl] == epoch && assigned_epoch[rl] == epoch
                        })
                    }));
                }
            }
        }
        clusters.push(cluster);
    }

    LocalClustering { clusters, core_points, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_spatial::{Dataset, KdTree, SpatialIndex};
    use std::sync::Arc;

    /// 1-d chain of points 1.0 apart: with eps=1.1 / minpts=2 the whole
    /// line is one density-connected cluster.
    fn chain_tree(n: usize) -> KdTree {
        let rows = (0..n).map(|i| vec![i as f64]).collect();
        KdTree::build(Arc::new(Dataset::from_rows(rows)))
    }

    fn run(
        tree: &KdTree,
        params: DbscanParams,
        ranges: &PartitionRanges,
        part: usize,
        policy: SeedPolicy,
    ) -> LocalClustering {
        let data = tree.dataset().clone();
        local_partial_clusters(
            |q, out| tree.range_into(data.point(PointId(q)), params.eps, out),
            params,
            ranges,
            part,
            policy,
        )
    }

    #[test]
    fn single_partition_matches_whole_clustering() {
        let tree = chain_tree(10);
        let params = DbscanParams::new(1.1, 2).unwrap();
        let ranges = PartitionRanges::new(10, 1);
        let local = run(&tree, params, &ranges, 0, SeedPolicy::OnePerPartition);
        assert_eq!(local.clusters.len(), 1);
        assert_eq!(local.clusters[0].len(), 10);
        assert_eq!(local.stats.seeds_placed, 0, "no foreign partitions exist");
        assert_eq!(local.core_points.len(), 10);
    }

    #[test]
    fn boundary_cluster_places_exactly_one_seed_paper_policy() {
        // chain split in two partitions: each side's cluster touches the
        // other side at exactly the boundary
        let tree = chain_tree(10);
        let params = DbscanParams::new(1.1, 2).unwrap();
        let ranges = PartitionRanges::new(10, 2);
        let left = run(&tree, params, &ranges, 0, SeedPolicy::OnePerPartition);
        assert_eq!(left.clusters.len(), 1);
        let seeds: Vec<u32> = left.clusters[0].seeds().collect();
        assert_eq!(seeds, vec![5], "one SEED into partition 1, the boundary point");
        let right = run(&tree, params, &ranges, 1, SeedPolicy::OnePerPartition);
        let rseeds: Vec<u32> = right.clusters[0].seeds().collect();
        assert_eq!(rseeds, vec![4]);
    }

    #[test]
    fn per_boundary_edge_policy_records_all_boundary_points() {
        // eps=2.1 reaches two points across the boundary
        let tree = chain_tree(10);
        let params = DbscanParams::new(2.1, 2).unwrap();
        let ranges = PartitionRanges::new(10, 2);
        let one = run(&tree, params, &ranges, 0, SeedPolicy::OnePerPartition);
        let all = run(&tree, params, &ranges, 0, SeedPolicy::PerBoundaryEdge);
        assert_eq!(one.clusters[0].seeds().count(), 1);
        assert_eq!(all.clusters[0].seeds().count(), 2, "points 5 and 6 both recorded");
    }

    #[test]
    fn foreign_points_are_never_expanded() {
        let tree = chain_tree(100);
        let params = DbscanParams::new(1.1, 2).unwrap();
        let ranges = PartitionRanges::new(100, 4);
        let local = run(&tree, params, &ranges, 1, SeedPolicy::OnePerPartition);
        // queries only for own 25 points (each visited once)
        assert_eq!(local.stats.neighbor_queries, 25);
        for c in &local.clusters {
            for r in c.regulars() {
                assert!(ranges.contains(1, r));
            }
        }
    }

    #[test]
    fn sparse_points_are_local_noise() {
        let rows = (0..8).map(|i| vec![i as f64 * 100.0]).collect();
        let tree = KdTree::build(Arc::new(Dataset::from_rows(rows)));
        let params = DbscanParams::new(1.0, 2).unwrap();
        let ranges = PartitionRanges::new(8, 2);
        let local = run(&tree, params, &ranges, 0, SeedPolicy::OnePerPartition);
        assert!(local.clusters.is_empty());
        assert_eq!(local.stats.local_noise, 4);
        assert!(local.core_points.is_empty());
    }

    #[test]
    fn two_separate_local_clusters_stay_separate() {
        // two dense blobs within one partition
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..5 {
            rows.push(vec![i as f64 * 0.1]);
        }
        for i in 0..5 {
            rows.push(vec![100.0 + i as f64 * 0.1]);
        }
        let tree = KdTree::build(Arc::new(Dataset::from_rows(rows)));
        let params = DbscanParams::new(0.5, 3).unwrap();
        let ranges = PartitionRanges::new(10, 1);
        let local = run(&tree, params, &ranges, 0, SeedPolicy::OnePerPartition);
        assert_eq!(local.clusters.len(), 2);
        assert_eq!(local.clusters[0].len(), 5);
        assert_eq!(local.clusters[1].len(), 5);
    }

    #[test]
    fn empty_partition_produces_nothing() {
        let tree = chain_tree(3);
        let params = DbscanParams::new(1.1, 2).unwrap();
        // 3 points over 5 partitions: some ranges are empty
        let ranges = PartitionRanges::new(3, 5);
        let local = run(&tree, params, &ranges, 1, SeedPolicy::OnePerPartition);
        assert!(local.stats.points_processed <= 1);
    }

    #[test]
    fn members_are_unique_within_a_cluster() {
        let tree = chain_tree(30);
        let params = DbscanParams::new(3.5, 2).unwrap(); // wide eps, heavy re-enqueueing
        let ranges = PartitionRanges::new(30, 3);
        for part in 0..3 {
            let local = run(&tree, params, &ranges, part, SeedPolicy::PerBoundaryEdge);
            for c in &local.clusters {
                let mut m = c.members.clone();
                m.sort_unstable();
                let before = m.len();
                m.dedup();
                assert_eq!(m.len(), before, "duplicate members in partition {part}");
            }
        }
    }

    #[test]
    fn reused_scratch_is_identical_to_fresh_scratch() {
        // one scratch driven through every partition of both policies,
        // repeatedly — outputs must match throwaway-scratch runs exactly
        let tree = chain_tree(60);
        let data = tree.dataset().clone();
        let params = DbscanParams::new(2.1, 2).unwrap();
        let ranges = PartitionRanges::new(60, 4);
        let mut scratch = ExecutorScratch::new();
        for _round in 0..3 {
            for policy in [SeedPolicy::OnePerPartition, SeedPolicy::PerBoundaryEdge] {
                for part in 0..4 {
                    let fresh = run(&tree, params, &ranges, part, policy);
                    let reused = local_partial_clusters_scratch(
                        |q, out| tree.range_into(data.point(PointId(q)), params.eps, out),
                        params,
                        &ranges,
                        part,
                        policy,
                        &mut scratch,
                    );
                    assert_eq!(fresh, reused, "partition {part} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn scratch_grows_to_high_water_and_stays() {
        let tree = chain_tree(40);
        let data = tree.dataset().clone();
        let params = DbscanParams::new(1.1, 2).unwrap();
        let mut scratch = ExecutorScratch::new();
        let go = |parts: usize, part: usize, scratch: &mut ExecutorScratch| {
            let ranges = PartitionRanges::new(40, parts);
            local_partial_clusters_scratch(
                |q, out| tree.range_into(data.point(PointId(q)), params.eps, out),
                params,
                &ranges,
                part,
                SeedPolicy::OnePerPartition,
                scratch,
            )
        };
        go(4, 0, &mut scratch); // local_n = 10
        assert_eq!(scratch.capacity(), 10);
        go(2, 1, &mut scratch); // local_n = 20: grows
        assert_eq!(scratch.capacity(), 20);
        go(8, 3, &mut scratch); // local_n = 5: keeps high-water capacity
        assert_eq!(scratch.capacity(), 20);
    }

    /// A mildly adversarial 2-d mixture: two dense blobs, a bridge of
    /// chained points between them, and a few isolated noise points.
    fn blob_rows() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for i in 0..12 {
            rows.push(vec![(i % 4) as f64 * 0.4, (i / 4) as f64 * 0.4]);
        }
        for i in 0..9 {
            rows.push(vec![2.0 + i as f64 * 0.9, 0.5]);
        }
        for i in 0..12 {
            rows.push(vec![11.0 + (i % 3) as f64 * 0.4, (i / 3) as f64 * 0.4]);
        }
        for i in 0..4 {
            rows.push(vec![50.0 + i as f64 * 40.0, -30.0]);
        }
        rows
    }

    fn run_kernel(
        tree: &KdTree,
        params: DbscanParams,
        ranges: &PartitionRanges,
        part: usize,
        policy: SeedPolicy,
        kernel: KernelConfig,
    ) -> LocalClustering {
        let data = tree.dataset().clone();
        let mut scratch = ExecutorScratch::new();
        let mut source = |q: u32, out: &mut Vec<PointId>| {
            tree.range_into(data.point(PointId(q)), params.eps, out)
        };
        local_partial_clusters_source(
            &mut source,
            params,
            ranges,
            part,
            policy,
            &mut scratch,
            kernel,
        )
    }

    #[test]
    fn batched_frontier_is_identical_to_scalar_for_every_chunk_size() {
        let datasets = [chain_tree(37), KdTree::build(Arc::new(Dataset::from_rows(blob_rows())))];
        for tree in &datasets {
            let n = tree.dataset().len();
            let params = DbscanParams::new(1.1, 3).unwrap();
            for parts in [1usize, 3] {
                let ranges = PartitionRanges::new(n, parts);
                for policy in [SeedPolicy::OnePerPartition, SeedPolicy::PerBoundaryEdge] {
                    for part in 0..parts {
                        let scalar = run(tree, params, &ranges, part, policy);
                        for batch in [1usize, 2, 3, 7, 64] {
                            let kernel = KernelConfig::default().with_batch(batch);
                            let batched = run_kernel(tree, params, &ranges, part, policy, kernel);
                            assert_eq!(
                                scalar, batched,
                                "batch={batch} part={part}/{parts} {policy:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn count_fast_path_is_identical_to_scalar() {
        // closure sources answer count_up_to with a full materialized
        // query, so the fast path must reproduce the scalar stats and
        // clustering exactly — alone and combined with batching
        let tree = KdTree::build(Arc::new(Dataset::from_rows(blob_rows())));
        let n = tree.dataset().len();
        let params = DbscanParams::new(1.1, 4).unwrap();
        let ranges = PartitionRanges::new(n, 2);
        for policy in [SeedPolicy::OnePerPartition, SeedPolicy::PerBoundaryEdge] {
            for part in 0..2 {
                let scalar = run(&tree, params, &ranges, part, policy);
                for batch in [0usize, 3] {
                    let kernel =
                        KernelConfig::default().with_batch(batch).with_count_fast_path(true);
                    let fast = run_kernel(&tree, params, &ranges, part, policy, kernel);
                    assert_eq!(scalar, fast, "batch={batch} part={part} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn tree_neighbor_source_matches_closure_source() {
        // the real executor-side source (BkdTree + QueryScratch, batched
        // leaf scans, early-exit counting) against a plain closure over
        // the same tree — neighbor order, hence member order, must match
        let ds = Arc::new(Dataset::from_rows(blob_rows()));
        let bkd = BkdTree::build(ds.clone());
        let n = ds.len();
        let params = DbscanParams::new(1.1, 3).unwrap();
        let ranges = PartitionRanges::new(n, 3);
        let configs = [
            KernelConfig::default(),
            KernelConfig::default().with_batch(4),
            KernelConfig::default().with_count_fast_path(true),
            KernelConfig::default().with_batch(4).with_count_fast_path(true),
        ];
        for policy in [SeedPolicy::OnePerPartition, SeedPolicy::PerBoundaryEdge] {
            for part in 0..3 {
                let mut base_scratch = QueryScratch::new();
                let baseline = local_partial_clusters(
                    |q, out| {
                        bkd.range_into_scratch(
                            ds.point(PointId(q)),
                            params.eps,
                            &mut base_scratch,
                            out,
                        )
                    },
                    params,
                    &ranges,
                    part,
                    policy,
                );
                for kernel in configs {
                    let mut qscratch = QueryScratch::new();
                    let mut source = TreeNeighborSource::new(
                        &bkd,
                        &mut qscratch,
                        params.eps,
                        PruneConfig::EXACT,
                    );
                    let mut scratch = ExecutorScratch::new();
                    let got = local_partial_clusters_source(
                        &mut source,
                        params,
                        &ranges,
                        part,
                        policy,
                        &mut scratch,
                        kernel,
                    );
                    assert_eq!(baseline, got, "{kernel:?} part={part} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn without_kernel_clears_only_kernel_counters() {
        let stats = ExecutorStats {
            neighbor_queries: 7,
            kernel: KernelCounters { rows_scanned: 99, ..Default::default() },
            ..Default::default()
        };
        let cleared = stats.without_kernel();
        assert_eq!(cleared.neighbor_queries, 7);
        assert!(cleared.kernel.is_zero());
    }
}
