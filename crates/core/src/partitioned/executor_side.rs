//! Executor-side local clustering with SEED placement — Algorithms 2
//! (lines 4–29) and 3 of the paper.
//!
//! The executor owns one contiguous index range. It expands clusters
//! with the usual queue-based DBSCAN, **but only through points it
//! owns**: when the queue yields a *foreign* index the executor never
//! expands it — it either records it as a SEED member (first time that
//! foreign partition is touched by this cluster, under the paper's
//! [`SeedPolicy::OnePerPartition`]) or skips it. Neighborhoods are
//! computed over the **full broadcast dataset**, so core status is
//! globally exact even though expansion is local.
//!
//! Data structures: the paper's §III-B uses a Java `Hashtable` for
//! visited state and a `LinkedList` queue for candidates. We keep the
//! FIFO queue (`VecDeque`) but replace the hashtable with **dense
//! per-partition arrays** indexed by local offset: the executor only
//! ever marks its own `[start, end)` points, so an `O(1)` array probe
//! beats hashing — and keeps per-point cost independent of partition
//! size (a `HashSet` sized to the whole partition penalizes the
//! 1-partition baseline through cache misses and would *inflate* the
//! reported speedups).

use crate::model::{PartialCluster, PartitionRanges};
use crate::params::DbscanParams;
use crate::partitioned::SeedPolicy;
use dbscan_spatial::PointId;
use std::collections::{HashSet, VecDeque};

/// Instrumentation returned with each executor's result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Points of the own range processed at the top level.
    pub points_processed: usize,
    /// eps-neighborhood queries issued.
    pub neighbor_queries: usize,
    /// Total neighbors returned across all queries — the executor's
    /// real scan effort (what the cost planner predicts), unlike
    /// `neighbor_queries`, which just tracks partition size.
    pub neighbors_found: usize,
    /// Own points found noise at the top level (may become borders of
    /// other partitions' clusters after the merge).
    pub local_noise: usize,
    /// SEEDs placed across all partial clusters.
    pub seeds_placed: usize,
}

/// One executor's output: its partial clusters, the core points it
/// certified, and stats.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalClustering {
    /// Partial clusters (with SEEDs), in creation order.
    pub clusters: Vec<PartialCluster>,
    /// Global indices of own points that are core points.
    pub core_points: Vec<u32>,
    /// Instrumentation.
    pub stats: ExecutorStats,
}

/// Reusable executor working state, epoch-stamped so nothing is
/// cleared (or reallocated) between tasks.
///
/// The per-partition `visited`/`assigned` arrays are validated by an
/// epoch stamp: an entry belongs to the current task iff its stamp
/// equals the task's epoch, so "clearing" them is a single counter
/// bump. The expansion queue, neighbor buffer and Algorithm-3 seed
/// tables likewise persist at their high-water capacity across every
/// partial cluster and every task the executor runs.
#[derive(Debug, Default)]
pub struct ExecutorScratch {
    /// Current task epoch; array entries are live iff stamped with it.
    epoch: u32,
    /// visited\[i\] iff `visited_epoch[i] == epoch`.
    visited_epoch: Vec<u32>,
    /// Point `i` already belongs to a cluster of this task iff
    /// `assigned_epoch[i] == epoch` (first assignment wins; *which*
    /// cluster claimed it lives in the cluster's member list).
    assigned_epoch: Vec<u32>,
    /// FIFO expansion queue (Algorithm 2), reused across clusters.
    queue: VecDeque<u32>,
    /// Neighborhood query buffer, reused across all queries.
    nbuf: Vec<PointId>,
    /// Algorithm 3's `place_flg`, stamped by `seed_stamp` — an entry
    /// belongs to the current cluster iff it holds the cluster's stamp.
    seeded_partition_stamp: Vec<u64>,
    /// Monotonic per-cluster stamp; never reused across tasks, so the
    /// partition table survives task boundaries without clearing.
    seed_stamp: u64,
    /// `(slot, point)` pairs already seeded under `PerBoundaryEdge`.
    seeded_points: HashSet<u64>,
}

impl ExecutorScratch {
    /// Fresh scratch (first task pays the allocations).
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a task over `local_n` points and `partitions` partitions:
    /// bump the epoch and grow (never shrink) the arrays.
    fn begin_task(&mut self, local_n: usize, partitions: usize) {
        if self.epoch == u32::MAX {
            // epoch wrap: hard-reset the stamps once every 2^32 tasks
            self.visited_epoch.iter_mut().for_each(|s| *s = 0);
            self.assigned_epoch.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        if self.visited_epoch.len() < local_n {
            self.visited_epoch.resize(local_n, 0);
            self.assigned_epoch.resize(local_n, 0);
        }
        if self.seeded_partition_stamp.len() < partitions {
            self.seeded_partition_stamp.resize(partitions, 0);
        }
        // slots restart at 0 each task, so the (slot, point) key set
        // must not leak across tasks; clearing keeps its capacity
        self.seeded_points.clear();
        self.queue.clear();
    }

    /// High-water capacity of the visited array (test hook).
    pub fn capacity(&self) -> usize {
        self.visited_epoch.len()
    }
}

/// Run Algorithms 2+3 for one partition with throwaway scratch.
///
/// `neighbors_of(idx, out)` must append the eps-neighborhood of point
/// `idx` over the **whole** dataset (the broadcast kd-tree query); `out`
/// arrives cleared.
pub fn local_partial_clusters(
    neighbors_of: impl FnMut(u32, &mut Vec<PointId>),
    params: DbscanParams,
    ranges: &PartitionRanges,
    partition: usize,
    seed_policy: SeedPolicy,
) -> LocalClustering {
    let mut scratch = ExecutorScratch::new();
    local_partial_clusters_scratch(
        neighbors_of,
        params,
        ranges,
        partition,
        seed_policy,
        &mut scratch,
    )
}

/// [`local_partial_clusters`] against caller-owned scratch, the hot
/// path for executors that process many partitions: steady-state tasks
/// allocate nothing but the output itself.
pub fn local_partial_clusters_scratch(
    mut neighbors_of: impl FnMut(u32, &mut Vec<PointId>),
    params: DbscanParams,
    ranges: &PartitionRanges,
    partition: usize,
    seed_policy: SeedPolicy,
    scratch: &mut ExecutorScratch,
) -> LocalClustering {
    let (start, end) = ranges.range(partition);
    let owner = partition as u32;
    let local_n = (end - start) as usize;

    scratch.begin_task(local_n, ranges.num_partitions());
    let epoch = scratch.epoch;
    let ExecutorScratch {
        visited_epoch,
        assigned_epoch,
        queue,
        nbuf,
        seeded_partition_stamp,
        seed_stamp,
        seeded_points,
        ..
    } = scratch;

    let mut clusters: Vec<PartialCluster> = Vec::new();
    let mut core_points: Vec<u32> = Vec::new();
    let mut stats = ExecutorStats::default();

    for p in start..end {
        let pl = (p - start) as usize;
        stats.points_processed += 1;
        if visited_epoch[pl] == epoch {
            continue;
        }
        visited_epoch[pl] = epoch;
        nbuf.clear();
        neighbors_of(p, nbuf);
        stats.neighbor_queries += 1;
        stats.neighbors_found += nbuf.len();
        if nbuf.len() < params.min_pts {
            // Algorithm 2 line 9: "mark p as noise" (it may later be
            // claimed as a border point by an expanding cluster)
            stats.local_noise += 1;
            continue;
        }

        // Algorithm 2 line 8: create a new cluster C and add p to it
        let slot = clusters.len() as u32;
        *seed_stamp += 1;
        let stamp = *seed_stamp;
        let mut cluster = PartialCluster::new(owner, (start, end));
        cluster.members.push(p);
        assigned_epoch[pl] = epoch;
        core_points.push(p);

        queue.clear();
        queue.extend(nbuf.iter().map(|id| id.0).filter(|&r| {
            // own points that are already visited *and* assigned have
            // nothing left to do at dequeue — don't enqueue them at all
            !(r >= start && r < end && {
                let rl = (r - start) as usize;
                visited_epoch[rl] == epoch && assigned_epoch[rl] == epoch
            })
        }));
        while let Some(q) = queue.pop_front() {
            if q < start || q >= end {
                // foreign point: SEED placement (Algorithm 3), never
                // expanded — "each executor only computes the points
                // that belong to it"
                let place = match seed_policy {
                    SeedPolicy::OnePerPartition => {
                        let pt = ranges.partition_of(q);
                        let fresh = seeded_partition_stamp[pt] != stamp;
                        seeded_partition_stamp[pt] = stamp;
                        fresh
                    }
                    SeedPolicy::PerBoundaryEdge => {
                        seeded_points.insert((slot as u64) << 32 | q as u64)
                    }
                };
                if place {
                    cluster.members.push(q);
                    stats.seeds_placed += 1;
                }
                continue;
            }
            let ql = (q - start) as usize;
            if visited_epoch[ql] == epoch {
                // Algorithm 2 lines 20-22: add to C if not yet a member
                // of any cluster (border-point claim)
                if assigned_epoch[ql] != epoch {
                    assigned_epoch[ql] = epoch;
                    cluster.members.push(q);
                }
                continue;
            }
            // Algorithm 2 lines 13-19: visit q, claim it, test core status
            visited_epoch[ql] = epoch;
            if assigned_epoch[ql] != epoch {
                assigned_epoch[ql] = epoch;
                cluster.members.push(q);
            }
            nbuf.clear();
            neighbors_of(q, nbuf);
            stats.neighbor_queries += 1;
            stats.neighbors_found += nbuf.len();
            if nbuf.len() >= params.min_pts {
                core_points.push(q);
                queue.extend(nbuf.iter().map(|id| id.0).filter(|&r| {
                    !(r >= start && r < end && {
                        let rl = (r - start) as usize;
                        visited_epoch[rl] == epoch && assigned_epoch[rl] == epoch
                    })
                }));
            }
        }
        clusters.push(cluster);
    }

    LocalClustering { clusters, core_points, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_spatial::{Dataset, KdTree, SpatialIndex};
    use std::sync::Arc;

    /// 1-d chain of points 1.0 apart: with eps=1.1 / minpts=2 the whole
    /// line is one density-connected cluster.
    fn chain_tree(n: usize) -> KdTree {
        let rows = (0..n).map(|i| vec![i as f64]).collect();
        KdTree::build(Arc::new(Dataset::from_rows(rows)))
    }

    fn run(
        tree: &KdTree,
        params: DbscanParams,
        ranges: &PartitionRanges,
        part: usize,
        policy: SeedPolicy,
    ) -> LocalClustering {
        let data = tree.dataset().clone();
        local_partial_clusters(
            |q, out| tree.range_into(data.point(PointId(q)), params.eps, out),
            params,
            ranges,
            part,
            policy,
        )
    }

    #[test]
    fn single_partition_matches_whole_clustering() {
        let tree = chain_tree(10);
        let params = DbscanParams::new(1.1, 2).unwrap();
        let ranges = PartitionRanges::new(10, 1);
        let local = run(&tree, params, &ranges, 0, SeedPolicy::OnePerPartition);
        assert_eq!(local.clusters.len(), 1);
        assert_eq!(local.clusters[0].len(), 10);
        assert_eq!(local.stats.seeds_placed, 0, "no foreign partitions exist");
        assert_eq!(local.core_points.len(), 10);
    }

    #[test]
    fn boundary_cluster_places_exactly_one_seed_paper_policy() {
        // chain split in two partitions: each side's cluster touches the
        // other side at exactly the boundary
        let tree = chain_tree(10);
        let params = DbscanParams::new(1.1, 2).unwrap();
        let ranges = PartitionRanges::new(10, 2);
        let left = run(&tree, params, &ranges, 0, SeedPolicy::OnePerPartition);
        assert_eq!(left.clusters.len(), 1);
        let seeds: Vec<u32> = left.clusters[0].seeds().collect();
        assert_eq!(seeds, vec![5], "one SEED into partition 1, the boundary point");
        let right = run(&tree, params, &ranges, 1, SeedPolicy::OnePerPartition);
        let rseeds: Vec<u32> = right.clusters[0].seeds().collect();
        assert_eq!(rseeds, vec![4]);
    }

    #[test]
    fn per_boundary_edge_policy_records_all_boundary_points() {
        // eps=2.1 reaches two points across the boundary
        let tree = chain_tree(10);
        let params = DbscanParams::new(2.1, 2).unwrap();
        let ranges = PartitionRanges::new(10, 2);
        let one = run(&tree, params, &ranges, 0, SeedPolicy::OnePerPartition);
        let all = run(&tree, params, &ranges, 0, SeedPolicy::PerBoundaryEdge);
        assert_eq!(one.clusters[0].seeds().count(), 1);
        assert_eq!(all.clusters[0].seeds().count(), 2, "points 5 and 6 both recorded");
    }

    #[test]
    fn foreign_points_are_never_expanded() {
        let tree = chain_tree(100);
        let params = DbscanParams::new(1.1, 2).unwrap();
        let ranges = PartitionRanges::new(100, 4);
        let local = run(&tree, params, &ranges, 1, SeedPolicy::OnePerPartition);
        // queries only for own 25 points (each visited once)
        assert_eq!(local.stats.neighbor_queries, 25);
        for c in &local.clusters {
            for r in c.regulars() {
                assert!(ranges.contains(1, r));
            }
        }
    }

    #[test]
    fn sparse_points_are_local_noise() {
        let rows = (0..8).map(|i| vec![i as f64 * 100.0]).collect();
        let tree = KdTree::build(Arc::new(Dataset::from_rows(rows)));
        let params = DbscanParams::new(1.0, 2).unwrap();
        let ranges = PartitionRanges::new(8, 2);
        let local = run(&tree, params, &ranges, 0, SeedPolicy::OnePerPartition);
        assert!(local.clusters.is_empty());
        assert_eq!(local.stats.local_noise, 4);
        assert!(local.core_points.is_empty());
    }

    #[test]
    fn two_separate_local_clusters_stay_separate() {
        // two dense blobs within one partition
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..5 {
            rows.push(vec![i as f64 * 0.1]);
        }
        for i in 0..5 {
            rows.push(vec![100.0 + i as f64 * 0.1]);
        }
        let tree = KdTree::build(Arc::new(Dataset::from_rows(rows)));
        let params = DbscanParams::new(0.5, 3).unwrap();
        let ranges = PartitionRanges::new(10, 1);
        let local = run(&tree, params, &ranges, 0, SeedPolicy::OnePerPartition);
        assert_eq!(local.clusters.len(), 2);
        assert_eq!(local.clusters[0].len(), 5);
        assert_eq!(local.clusters[1].len(), 5);
    }

    #[test]
    fn empty_partition_produces_nothing() {
        let tree = chain_tree(3);
        let params = DbscanParams::new(1.1, 2).unwrap();
        // 3 points over 5 partitions: some ranges are empty
        let ranges = PartitionRanges::new(3, 5);
        let local = run(&tree, params, &ranges, 1, SeedPolicy::OnePerPartition);
        assert!(local.stats.points_processed <= 1);
    }

    #[test]
    fn members_are_unique_within_a_cluster() {
        let tree = chain_tree(30);
        let params = DbscanParams::new(3.5, 2).unwrap(); // wide eps, heavy re-enqueueing
        let ranges = PartitionRanges::new(30, 3);
        for part in 0..3 {
            let local = run(&tree, params, &ranges, part, SeedPolicy::PerBoundaryEdge);
            for c in &local.clusters {
                let mut m = c.members.clone();
                m.sort_unstable();
                let before = m.len();
                m.dedup();
                assert_eq!(m.len(), before, "duplicate members in partition {part}");
            }
        }
    }

    #[test]
    fn reused_scratch_is_identical_to_fresh_scratch() {
        // one scratch driven through every partition of both policies,
        // repeatedly — outputs must match throwaway-scratch runs exactly
        let tree = chain_tree(60);
        let data = tree.dataset().clone();
        let params = DbscanParams::new(2.1, 2).unwrap();
        let ranges = PartitionRanges::new(60, 4);
        let mut scratch = ExecutorScratch::new();
        for _round in 0..3 {
            for policy in [SeedPolicy::OnePerPartition, SeedPolicy::PerBoundaryEdge] {
                for part in 0..4 {
                    let fresh = run(&tree, params, &ranges, part, policy);
                    let reused = local_partial_clusters_scratch(
                        |q, out| tree.range_into(data.point(PointId(q)), params.eps, out),
                        params,
                        &ranges,
                        part,
                        policy,
                        &mut scratch,
                    );
                    assert_eq!(fresh, reused, "partition {part} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn scratch_grows_to_high_water_and_stays() {
        let tree = chain_tree(40);
        let data = tree.dataset().clone();
        let params = DbscanParams::new(1.1, 2).unwrap();
        let mut scratch = ExecutorScratch::new();
        let go = |parts: usize, part: usize, scratch: &mut ExecutorScratch| {
            let ranges = PartitionRanges::new(40, parts);
            local_partial_clusters_scratch(
                |q, out| tree.range_into(data.point(PointId(q)), params.eps, out),
                params,
                &ranges,
                part,
                SeedPolicy::OnePerPartition,
                scratch,
            )
        };
        go(4, 0, &mut scratch); // local_n = 10
        assert_eq!(scratch.capacity(), 10);
        go(2, 1, &mut scratch); // local_n = 20: grows
        assert_eq!(scratch.capacity(), 20);
        go(8, 3, &mut scratch); // local_n = 5: keeps high-water capacity
        assert_eq!(scratch.capacity(), 20);
    }
}
