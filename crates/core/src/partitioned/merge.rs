//! Driver-side merging of partial clusters — Algorithm 4 of the paper —
//! plus hardened variants.
//!
//! The key observation (Fig. 4): a SEED in partial cluster `C[i]` is a
//! *regular* element of exactly one other partial cluster (its
//! **master**), because every point is a regular member of at most one
//! partial cluster of its own partition. Locating the master and merging
//! yields the global clusters.
//!
//! **Correctness repair over the printed Algorithm 4**: a SEED may land
//! on a *border* point of the foreign partition — a point that is a
//! regular member of some cluster B without being density-connected to
//! the seeding cluster A (border points can be reachable from several
//! clusters at once). Merging on such a SEED would weld together
//! clusters that sequential DBSCAN keeps apart. We therefore merge only
//! through SEEDs that are **core points** (the driver knows every
//! point's core status from the executors); two clusters are genuinely
//! one exactly when a core–core edge crosses the boundary, and that
//! core endpoint is always recorded as a SEED. Non-core SEEDs still
//! receive the seeding cluster's label (ordinary border assignment).

use crate::label::{Clustering, Label};
use crate::model::PartialCluster;
use crate::unionfind::DisjointSet;
use std::collections::HashMap;

/// How the driver merges partial clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Algorithm 4 verbatim: one pass over the clusters; each unfinished
    /// cluster pulls in the masters of its (original) SEEDs and all
    /// statuses become Finished. Misses transitive chains across ≥3
    /// partitions (seeds gained *by* merging are not chased).
    PaperSinglePass,
    /// Algorithm 4 repeated until no merge happens, with SEED sets
    /// recomputed from the merged membership — fixes transitivity while
    /// keeping the paper's scan structure.
    PaperFixpoint,
    /// Union-find over the SEED → master edges; equivalent result to
    /// `PaperFixpoint` at lower cost. The recommended default.
    UnionFind,
}

/// Result of the merge phase.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// Final labels over all `n` points (core flags not filled here —
    /// the driver overlays them from the executors' core lists).
    pub clustering: Clustering,
    /// Number of global clusters after merging.
    pub merged_clusters: usize,
    /// Number of merge operations performed.
    pub merge_ops: usize,
    /// Scan passes over the partial clusters (1 for single-pass and
    /// union-find).
    pub passes: usize,
}

/// Index from point to the partial cluster holding it as a *regular*
/// element. Unique by construction (one assignment per point per
/// partition, ranges disjoint).
fn owner_index(partials: &[PartialCluster]) -> HashMap<u32, usize> {
    let mut owner = HashMap::new();
    for (i, c) in partials.iter().enumerate() {
        for r in c.regulars() {
            let prev = owner.insert(r, i);
            debug_assert!(prev.is_none(), "point {r} regular in two partial clusters");
        }
    }
    owner
}

/// Merge `partials` into global clusters over `n` points.
///
/// `core[idx]` must say whether global point `idx` is a core point;
/// only core SEEDs trigger merges (see module docs).
pub fn merge_partial_clusters(
    n: usize,
    partials: &[PartialCluster],
    strategy: MergeStrategy,
    core: &[bool],
) -> MergeOutcome {
    assert_eq!(core.len(), n, "core flags must cover every point");
    let owner = owner_index(partials);
    let (groups, merge_ops, passes) = match strategy {
        MergeStrategy::UnionFind => union_find_groups(partials, &owner, core),
        MergeStrategy::PaperSinglePass => paper_groups(partials, &owner, core, false),
        MergeStrategy::PaperFixpoint => paper_groups(partials, &owner, core, true),
    };

    // assemble labels: first assignment wins (DBSCAN border semantics)
    let mut labels = vec![Label::Noise; n];
    let mut cluster_id = 0u32;
    let mut merged_clusters = 0usize;
    for group in &groups {
        if group.is_empty() {
            continue;
        }
        let mut any = false;
        for &i in group {
            for &m in &partials[i].members {
                let slot = &mut labels[m as usize];
                if *slot == Label::Noise {
                    *slot = Label::Cluster(cluster_id);
                    any = true;
                }
            }
        }
        if any {
            cluster_id += 1;
            merged_clusters += 1;
        }
    }

    MergeOutcome {
        clustering: Clustering { labels, core: vec![false; n] },
        merged_clusters,
        merge_ops,
        passes,
    }
}

/// Union-find over SEED edges: groups = connected components.
fn union_find_groups(
    partials: &[PartialCluster],
    owner: &HashMap<u32, usize>,
    core: &[bool],
) -> (Vec<Vec<usize>>, usize, usize) {
    let m = partials.len();
    let mut dsu = DisjointSet::new(m);
    let mut merge_ops = 0;
    for (i, c) in partials.iter().enumerate() {
        for s in c.seeds().filter(|&s| core[s as usize]) {
            if let Some(&j) = owner.get(&s) {
                if dsu.union(i, j) {
                    merge_ops += 1;
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..m {
        groups.entry(dsu.find(i)).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    // deterministic order: by smallest member cluster index
    out.sort_by_key(|g| g.iter().min().copied());
    (out, merge_ops, 1)
}

/// Algorithm 4 as printed (optionally repeated to a fixpoint).
fn paper_groups(
    partials: &[PartialCluster],
    owner: &HashMap<u32, usize>,
    core: &[bool],
    fixpoint: bool,
) -> (Vec<Vec<usize>>, usize, usize) {
    let m = partials.len();
    // group_of[i]: index of the active group this partial belongs to
    let mut group_of: Vec<usize> = (0..m).collect();
    let mut groups: Vec<Vec<usize>> = (0..m).map(|i| vec![i]).collect();
    let mut merge_ops = 0usize;
    let mut passes = 0usize;

    loop {
        passes += 1;
        let mut merged_this_pass = false;
        // line 1: for i = 0 .. all partial clusters
        for g in 0..groups.len() {
            if groups[g].is_empty() {
                continue; // absorbed earlier ("finished")
            }
            // line 3: identify seeds from the (current) cluster
            let seed_masters: Vec<usize> = {
                let constituents = &groups[g];
                let mut masters = Vec::new();
                for &i in constituents {
                    for s in partials[i].seeds().filter(|&s| core[s as usize]) {
                        if let Some(&j) = owner.get(&s) {
                            let tg = group_of[j];
                            if tg != g {
                                masters.push(tg);
                            }
                        }
                    }
                }
                masters
            };
            // lines 4-8: merge each master into the current cluster
            for tg0 in seed_masters {
                // the master group may itself have been merged meanwhile;
                // chase its current location
                let tg = current_group(&group_of, &groups, tg0);
                if tg == g || groups[tg].is_empty() {
                    continue;
                }
                let absorbed = std::mem::take(&mut groups[tg]);
                for &i in &absorbed {
                    group_of[i] = g;
                }
                groups[g].extend(absorbed);
                merge_ops += 1;
                merged_this_pass = true;
            }
        }
        if !fixpoint || !merged_this_pass {
            break;
        }
    }

    let mut out: Vec<Vec<usize>> = groups.into_iter().filter(|g| !g.is_empty()).collect();
    out.sort_by_key(|g| g.iter().min().copied());
    (out, merge_ops, passes)
}

/// Follow `group_of` to the group that currently holds `g`'s first
/// member (groups may have been drained by earlier merges in the pass).
fn current_group(group_of: &[usize], groups: &[Vec<usize>], g: usize) -> usize {
    if let Some(&first) = groups[g].first() {
        group_of[first]
    } else {
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a partial cluster quickly.
    fn pc(owner: u32, range: (u32, u32), members: &[u32]) -> PartialCluster {
        let mut c = PartialCluster::new(owner, range);
        c.members = members.to_vec();
        c
    }

    const STRATEGIES: [MergeStrategy; 3] =
        [MergeStrategy::PaperSinglePass, MergeStrategy::PaperFixpoint, MergeStrategy::UnionFind];

    #[test]
    fn figure4_example_merges_two_clusters() {
        // C[0]: range 0..2500 with SEED 3000; C[5]: range 2500..5000
        // containing 3000 as a regular element
        let c0 = pc(0, (0, 2500), &[0, 5, 6, 3000, 11, 223, 2300, 23, 45, 1000]);
        let c5 = pc(1, (2500, 5000), &[3000, 2501, 4200, 2800, 2600, 3401, 3678]);
        for s in STRATEGIES {
            let out = merge_partial_clusters(5000, &[c0.clone(), c5.clone()], s, &vec![true; 5000]);
            assert_eq!(out.merged_clusters, 1, "{s:?}");
            assert_eq!(out.merge_ops, 1);
            // every member of both partials has the same label
            let l = out.clustering.labels[0];
            for &m in c0.members.iter().chain(&c5.members) {
                assert_eq!(out.clustering.labels[m as usize], l);
            }
        }
    }

    #[test]
    fn disjoint_partials_stay_separate() {
        let a = pc(0, (0, 10), &[1, 2, 3]);
        let b = pc(1, (10, 20), &[11, 12]);
        for s in STRATEGIES {
            let out = merge_partial_clusters(20, &[a.clone(), b.clone()], s, &[true; 20]);
            assert_eq!(out.merged_clusters, 2, "{s:?}");
            assert_eq!(out.merge_ops, 0);
            assert_ne!(out.clustering.labels[1], out.clustering.labels[11]);
        }
    }

    #[test]
    fn seed_to_unowned_point_is_harmless() {
        // the SEED points at a noise point of the foreign partition
        // (regular member of no partial cluster)
        let a = pc(0, (0, 10), &[1, 2, 15]);
        let b = pc(1, (10, 20), &[11, 12]);
        for s in STRATEGIES {
            let out = merge_partial_clusters(20, &[a.clone(), b.clone()], s, &[true; 20]);
            assert_eq!(out.merged_clusters, 2, "{s:?}");
            // the seed itself still gets cluster a's label (border point)
            assert_eq!(out.clustering.labels[15], out.clustering.labels[1]);
        }
    }

    #[test]
    fn transitive_chain_across_three_partitions() {
        // A --seed--> B --seed--> C: single-pass processes A first and,
        // per the printed algorithm, does not chase B's seeds — catching
        // this divergence is exactly why the hardened modes exist.
        // Here the chain happens to be discovered because the pass also
        // visits B's group (now merged into A) ... single-pass CAN catch
        // chains when order is favourable; build the unfavourable order:
        // C first would finish C before B merges into A.
        let a = pc(0, (0, 10), &[1, 12]); // seed into B's range
        let b = pc(1, (10, 20), &[12, 22]); // seed into C's range
        let c = pc(2, (20, 30), &[22, 25]);
        let partials = [c.clone(), a.clone(), b.clone()]; // C scanned first
        let uf = merge_partial_clusters(30, &partials, MergeStrategy::UnionFind, &[true; 30]);
        assert_eq!(uf.merged_clusters, 1);
        let fx = merge_partial_clusters(30, &partials, MergeStrategy::PaperFixpoint, &[true; 30]);
        assert_eq!(fx.merged_clusters, 1);
        assert!(fx.passes >= 1);
        // single-pass on this order still merges everything reachable
        // through regular-member seeds transitively chased via groups;
        // assert it never *splits* what union-find joins into more
        // clusters than fixpoint + document the count
        let sp = merge_partial_clusters(30, &partials, MergeStrategy::PaperSinglePass, &[true; 30]);
        assert!(sp.merged_clusters >= uf.merged_clusters);
    }

    #[test]
    fn fixpoint_equals_unionfind_on_random_topologies() {
        // pseudo-random seed graphs over k partials
        let mut state = 0x12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50 {
            let k = 2 + (next() % 8) as usize;
            let per = 5u32;
            let n = k as u32 * per;
            let mut partials: Vec<PartialCluster> = (0..k)
                .map(|i| {
                    let a = i as u32 * per;
                    pc(i as u32, (a, a + per), &[a, a + 1])
                })
                .collect();
            // sprinkle random seeds
            for _ in 0..(next() % 10) {
                let from = (next() % k as u64) as usize;
                let to_point = (next() % n as u64) as u32;
                if !partials[from].is_regular(to_point) {
                    partials[from].members.push(to_point);
                }
            }
            let uf = merge_partial_clusters(
                n as usize,
                &partials,
                MergeStrategy::UnionFind,
                &vec![true; n as usize],
            );
            let fx = merge_partial_clusters(
                n as usize,
                &partials,
                MergeStrategy::PaperFixpoint,
                &vec![true; n as usize],
            );
            assert_eq!(uf.merged_clusters, fx.merged_clusters, "trial {trial}");
            assert_eq!(
                uf.clustering.canonicalize().labels,
                fx.clustering.canonicalize().labels,
                "trial {trial}"
            );
        }
    }

    #[test]
    fn empty_input() {
        for s in STRATEGIES {
            let out = merge_partial_clusters(5, &[], s, &[false; 5]);
            assert_eq!(out.merged_clusters, 0);
            assert_eq!(out.clustering.noise_count(), 5);
        }
    }

    #[test]
    fn duplicate_members_after_merge_get_one_label() {
        let a = pc(0, (0, 10), &[1, 12]);
        let b = pc(1, (10, 20), &[12, 13]);
        let out = merge_partial_clusters(20, &[a, b], MergeStrategy::UnionFind, &[true; 20]);
        assert_eq!(out.merged_clusters, 1);
        assert!(out.clustering.labels[12].is_cluster());
    }

    #[test]
    fn border_seed_does_not_weld_clusters() {
        // point 12 is a shared BORDER point: regular member of b, SEED
        // of a — merging would be wrong, the clusters stay apart
        let a = pc(0, (0, 10), &[1, 2, 12]);
        let b = pc(1, (10, 20), &[12, 13, 14]);
        let mut core = vec![true; 20];
        core[12] = false;
        for s in STRATEGIES {
            let out = merge_partial_clusters(20, &[a.clone(), b.clone()], s, &core);
            assert_eq!(out.merged_clusters, 2, "{s:?}: border seed must not merge");
            assert_ne!(out.clustering.labels[1], out.clustering.labels[13]);
            // the border point itself is labeled (first-wins)
            assert!(out.clustering.labels[12].is_cluster());
        }
    }

    #[test]
    fn core_seed_still_welds_clusters() {
        let a = pc(0, (0, 10), &[1, 2, 12]);
        let b = pc(1, (10, 20), &[12, 13, 14]);
        let core = vec![true; 20];
        for s in STRATEGIES {
            let out = merge_partial_clusters(20, &[a.clone(), b.clone()], s, &core);
            assert_eq!(out.merged_clusters, 1, "{s:?}");
        }
    }
}
