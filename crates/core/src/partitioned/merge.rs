//! Driver-side merging of partial clusters — Algorithm 4 of the paper —
//! plus hardened variants.
//!
//! The key observation (Fig. 4): a SEED in partial cluster `C[i]` is a
//! *regular* element of exactly one other partial cluster (its
//! **master**), because every point is a regular member of at most one
//! partial cluster of its own partition. Locating the master and merging
//! yields the global clusters.
//!
//! **Correctness repair over the printed Algorithm 4**: a SEED may land
//! on a *border* point of the foreign partition — a point that is a
//! regular member of some cluster B without being density-connected to
//! the seeding cluster A (border points can be reachable from several
//! clusters at once). Merging on such a SEED would weld together
//! clusters that sequential DBSCAN keeps apart. We therefore merge only
//! through SEEDs that are **core points** (the driver knows every
//! point's core status from the executors); two clusters are genuinely
//! one exactly when a core–core edge crosses the boundary, and that
//! core endpoint is always recorded as a SEED. Non-core SEEDs still
//! receive the seeding cluster's label (ordinary border assignment).

//!
//! **Parallel merge (this module's union-find path)**: the merge is
//! decomposed into data-parallel phases — dense owner-index fill, SEED
//! edge extraction over shards of the partial-cluster list, then (after
//! a tiny serial seal that sorts the edge list by canonical key and
//! feeds it to the union-find) a per-point minimum-group-rank
//! reduction and a chunked relabel. Every phase is either a disjoint
//! write or a commutative `fetch_min`, so the output is byte-identical
//! for any thread count; `threads = 1` is the literal sequential
//! schedule.

use crate::label::{Clustering, Label};
use crate::model::PartialCluster;
use crate::unionfind::DisjointSet;
use dbscan_spatial::lpt_makespan_nanos;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

/// A point with no partial cluster holding it as a regular element.
const UNOWNED: u32 = u32::MAX;
/// Partial clusters per extraction / rank shard.
const PARTIAL_CHUNK: usize = 8;
/// Points per relabel shard.
const POINT_CHUNK: usize = 8192;

/// How the driver merges partial clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// Algorithm 4 verbatim: one pass over the clusters; each unfinished
    /// cluster pulls in the masters of its (original) SEEDs and all
    /// statuses become Finished. Misses transitive chains across ≥3
    /// partitions (seeds gained *by* merging are not chased).
    PaperSinglePass,
    /// Algorithm 4 repeated until no merge happens, with SEED sets
    /// recomputed from the merged membership — fixes transitivity while
    /// keeping the paper's scan structure.
    PaperFixpoint,
    /// Union-find over the SEED → master edges; equivalent result to
    /// `PaperFixpoint` at lower cost. The recommended default.
    UnionFind,
}

/// Result of the merge phase.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// Final labels over all `n` points (core flags not filled here —
    /// the driver overlays them from the executors' core lists).
    pub clustering: Clustering,
    /// Number of global clusters after merging.
    pub merged_clusters: usize,
    /// Number of merge operations performed.
    pub merge_ops: usize,
    /// Scan passes over the partial clusters (1 for single-pass and
    /// union-find).
    pub passes: usize,
}

/// Wall-time breakdown of one instrumented merge: each phase is either
/// serial (one chunk) or data-parallel (one chunk per shard), so the
/// benchmark can replay the measured chunks through an LPT schedule and
/// model the makespan at any worker count.
#[derive(Debug, Clone, Default)]
pub struct MergeReport {
    /// Phases in execution order.
    pub phases: Vec<MergePhase>,
    /// Wall time of the whole merge call.
    pub total_nanos: u64,
}

/// One timed merge phase.
#[derive(Debug, Clone)]
pub struct MergePhase {
    /// Phase name (`owner_fill`, `edge_extract`, `seal`, `winner_rank`,
    /// `relabel`, ...).
    pub name: &'static str,
    /// Serial phases contribute their full duration at any thread count.
    pub serial: bool,
    /// Per-shard durations (one entry for serial phases).
    pub chunk_nanos: Vec<u64>,
}

impl MergeReport {
    fn push(&mut self, name: &'static str, serial: bool, chunk_nanos: Vec<u64>) {
        self.phases.push(MergePhase { name, serial, chunk_nanos });
    }

    /// Total measured nanos of all phases with this name.
    pub fn phase_nanos(&self, name: &str) -> u64 {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.chunk_nanos.iter().sum::<u64>())
            .sum()
    }

    /// Sum of every phase (the serial critical path).
    pub fn serial_nanos(&self) -> u64 {
        self.phases.iter().map(|p| p.chunk_nanos.iter().sum::<u64>()).sum()
    }

    /// Modeled makespan on `k` workers: serial phases run whole, each
    /// parallel phase contributes its LPT schedule length over `k`.
    pub fn modeled_makespan_nanos(&self, k: usize) -> u64 {
        let k = k.max(1);
        self.phases
            .iter()
            .map(|p| {
                if p.serial || k == 1 {
                    p.chunk_nanos.iter().sum::<u64>()
                } else {
                    lpt_makespan_nanos(p.chunk_nanos.iter().copied(), k)
                }
            })
            .sum()
    }
}

/// Run `items` across `threads` scoped workers with a static
/// round-robin assignment, timing each item. Every item owns the
/// mutable state it touches (disjoint slices or commutative atomics),
/// so the schedule cannot change any output. Returns per-item nanos in
/// item order.
fn run_items<T: Send, F: Fn(T) + Sync>(items: Vec<T>, threads: usize, f: F) -> Vec<u64> {
    let count = items.len();
    let k = threads.max(1).min(count.max(1));
    if k <= 1 {
        return items
            .into_iter()
            .map(|it| {
                let t = Instant::now();
                f(it);
                t.elapsed().as_nanos() as u64
            })
            .collect();
    }
    let mut buckets: Vec<Vec<(usize, T)>> = (0..k).map(|_| Vec::new()).collect();
    for (i, it) in items.into_iter().enumerate() {
        buckets[i % k].push((i, it));
    }
    let times: Vec<AtomicU64> = (0..count).map(|_| AtomicU64::new(0)).collect();
    let (f, times_ref) = (&f, &times);
    std::thread::scope(|s| {
        for bucket in buckets {
            s.spawn(move || {
                for (i, it) in bucket {
                    let t = Instant::now();
                    f(it);
                    times_ref[i].store(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                }
            });
        }
    });
    times.into_iter().map(|t| t.into_inner()).collect()
}

/// Per-partition windows of the owner array: `(lo, hi, first, last)`
/// partial-cluster index range whose regulars live in `[lo, hi)`.
/// `None` when the partial list is not grouped by disjoint ascending
/// ranges (arbitrary test inputs) — callers fall back to a serial fill.
fn partition_windows(partials: &[PartialCluster]) -> Option<Vec<(usize, usize, usize, usize)>> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut prev_hi = 0u32;
    while i < partials.len() {
        let r = partials[i].range;
        if r.0 < prev_hi || r.1 < r.0 {
            return None;
        }
        let mut j = i + 1;
        while j < partials.len() && partials[j].range == r {
            j += 1;
        }
        out.push((r.0 as usize, r.1 as usize, i, j));
        prev_hi = r.1;
        i = j;
    }
    Some(out)
}

/// Dense owner index: `owner[p]` = index of the partial cluster holding
/// point `p` as a *regular* element (unique by construction — one
/// assignment per point per partition, ranges disjoint), `UNOWNED`
/// otherwise. Parallel across partition windows when the partial list
/// is range-grouped (the driver's canonical order).
fn fill_owner(
    n: usize,
    partials: &[PartialCluster],
    threads: usize,
    report: &mut MergeReport,
) -> Vec<u32> {
    let t = Instant::now();
    let mut owner = vec![UNOWNED; n];
    report.push("owner_init", true, vec![t.elapsed().as_nanos() as u64]);

    match partition_windows(partials) {
        Some(windows) if !windows.is_empty() => {
            // hand each window its disjoint slice of the owner array
            let mut items = Vec::with_capacity(windows.len());
            let mut rest = &mut owner[..];
            let mut base = 0usize;
            for &(lo, hi, first, last) in &windows {
                let (_, tail) = rest.split_at_mut(lo - base);
                let (win, tail) = tail.split_at_mut(hi - lo);
                rest = tail;
                base = hi;
                items.push((lo, win, first, last));
            }
            let nanos = run_items(
                items,
                threads,
                |(lo, win, first, last): (usize, &mut [u32], usize, usize)| {
                    for (i, c) in partials.iter().enumerate().take(last).skip(first) {
                        for r in c.regulars() {
                            let slot = &mut win[r as usize - lo];
                            debug_assert!(
                                *slot == UNOWNED,
                                "point {r} regular in two partial clusters"
                            );
                            *slot = i as u32;
                        }
                    }
                },
            );
            report.push("owner_fill", false, nanos);
        }
        _ => {
            let t = Instant::now();
            for (i, c) in partials.iter().enumerate() {
                for r in c.regulars() {
                    debug_assert!(
                        owner[r as usize] == UNOWNED,
                        "point {r} regular in two partial clusters"
                    );
                    owner[r as usize] = i as u32;
                }
            }
            report.push("owner_fill", true, vec![t.elapsed().as_nanos() as u64]);
        }
    }
    owner
}

/// Extract the core SEED → master edges that drive the union-find, in
/// parallel shards of the partial-cluster list. Each shard's buffer is
/// sorted and deduplicated before the shards are concatenated in shard
/// order (never arrival order), so the result is deterministic and the
/// duplicate boundary edges of [`SeedPolicy::PerBoundaryEdge`] are
/// squeezed out inside the parallel phase instead of burdening the
/// serial sort of the seal.
///
/// [`SeedPolicy::PerBoundaryEdge`]: crate::SeedPolicy::PerBoundaryEdge
pub fn extract_seed_edges(
    n: usize,
    partials: &[PartialCluster],
    core: &[bool],
    threads: usize,
) -> Vec<(u32, u32)> {
    extract_seed_edges_impl(n, partials, core, threads, &mut MergeReport::default())
}

fn extract_seed_edges_impl(
    n: usize,
    partials: &[PartialCluster],
    core: &[bool],
    threads: usize,
    report: &mut MergeReport,
) -> Vec<(u32, u32)> {
    assert_eq!(core.len(), n, "core flags must cover every point");
    let owner = fill_owner(n, partials, threads, report);

    let m = partials.len();
    let shards = m.div_ceil(PARTIAL_CHUNK).max(1);
    let mut bufs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); shards];
    let items: Vec<(usize, &mut Vec<(u32, u32)>)> = bufs.iter_mut().enumerate().collect();
    let owner_ref = &owner;
    let nanos = run_items(items, threads, move |(ci, buf)| {
        let lo = ci * PARTIAL_CHUNK;
        let hi = (lo + PARTIAL_CHUNK).min(m);
        for (i, c) in partials.iter().enumerate().take(hi).skip(lo) {
            for s in c.seeds().filter(|&s| core[s as usize]) {
                let j = owner_ref[s as usize];
                if j != UNOWNED {
                    buf.push((i as u32, j));
                }
            }
        }
        // local dedup: the seal's global sort+dedup makes this a pure
        // optimization — same edge set, far less serial work
        buf.sort_unstable();
        buf.dedup();
    });
    report.push("edge_extract", false, nanos);

    // concatenate in shard order through disjoint output windows, so
    // the copy parallelizes; only the (memset-speed) allocation stays
    // serial
    let t = Instant::now();
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    let mut edges = vec![(0u32, 0u32); total];
    report.push("edge_alloc", true, vec![t.elapsed().as_nanos() as u64]);
    // one shard's concat assignment: destination window, source buffer
    type ConcatItem<'a> = (&'a mut [(u32, u32)], &'a [(u32, u32)]);
    let mut items: Vec<ConcatItem> = Vec::with_capacity(bufs.len());
    let mut rest = edges.as_mut_slice();
    for b in &bufs {
        let (win, tail) = std::mem::take(&mut rest).split_at_mut(b.len());
        rest = tail;
        items.push((win, b.as_slice()));
    }
    let nanos = run_items(items, threads, |(win, src): ConcatItem| win.copy_from_slice(src));
    report.push("edge_concat", false, nanos);
    edges
}

/// Union the extracted SEED edges and assemble the labels. Equivalent
/// to the sequential Algorithm-4 union-find at any thread count:
/// components don't depend on union order, groups are rebuilt in the
/// same canonical order (sorted by smallest member), and first-
/// assignment-wins label assembly is replayed as a per-point
/// minimum-group-rank reduction (commutative `fetch_min`).
pub fn merge_with_edges(
    n: usize,
    partials: &[PartialCluster],
    edges: &[(u32, u32)],
    threads: usize,
) -> MergeOutcome {
    merge_with_edges_impl(n, partials, edges, threads, &mut MergeReport::default())
}

fn merge_with_edges_impl(
    n: usize,
    partials: &[PartialCluster],
    edges: &[(u32, u32)],
    threads: usize,
    report: &mut MergeReport,
) -> MergeOutcome {
    // serial seal: canonical edge order + union-find + group build.
    // Tiny — O(#edges log + m α) on a list that is orders of magnitude
    // smaller than the point count.
    let t = Instant::now();
    let m = partials.len();
    let mut sorted: Vec<(u32, u32)> = edges.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut dsu = DisjointSet::new(m);
    let mut merge_ops = 0usize;
    for &(a, b) in &sorted {
        if dsu.union(a as usize, b as usize) {
            merge_ops += 1;
        }
    }
    let mut by_root: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..m {
        by_root.entry(dsu.find(i)).or_default().push(i);
    }
    let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
    // deterministic order: by smallest member cluster index
    groups.sort_by_key(|g| g.iter().min().copied());
    report.push("seal", true, vec![t.elapsed().as_nanos() as u64]);

    let (labels, merged_clusters) = assemble_labels(n, partials, &groups, threads, report);
    MergeOutcome {
        clustering: Clustering { labels, core: vec![false; n] },
        merged_clusters,
        merge_ops,
        passes: 1,
    }
}

/// Replay first-assignment-wins labeling in parallel: a point's label
/// comes from the lowest-ranked group containing it (exactly the group
/// that would have assigned it first in the serial scan), and a group
/// consumes a cluster id iff it wins at least one point (exactly the
/// serial `any` flag).
fn assemble_labels(
    n: usize,
    partials: &[PartialCluster],
    groups: &[Vec<usize>],
    threads: usize,
    report: &mut MergeReport,
) -> (Vec<Label>, usize) {
    let t = Instant::now();
    let winner: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let rank_items: Vec<(u32, usize)> = groups
        .iter()
        .enumerate()
        .flat_map(|(r, g)| g.iter().map(move |&i| (r as u32, i)))
        .collect();
    report.push("winner_init", true, vec![t.elapsed().as_nanos() as u64]);

    let shards = rank_items.len().div_ceil(PARTIAL_CHUNK).max(1);
    let items: Vec<&[(u32, usize)]> = rank_items.chunks(PARTIAL_CHUNK.max(1)).collect();
    let winner_ref = &winner;
    let nanos = run_items(items, threads, move |chunk: &[(u32, usize)]| {
        for &(rank, i) in chunk {
            for &p in &partials[i].members {
                winner_ref[p as usize].fetch_min(rank, Ordering::Relaxed);
            }
        }
    });
    debug_assert!(nanos.len() <= shards.max(1));
    report.push("winner_rank", false, nanos);

    // serial prefix: which ranks won at least one point, and their
    // final cluster ids in rank order
    let t = Instant::now();
    let mut productive = vec![false; groups.len()];
    for w in &winner {
        let r = w.load(Ordering::Relaxed);
        if r != u32::MAX {
            productive[r as usize] = true;
        }
    }
    let mut id_of_rank = vec![0u32; groups.len()];
    let mut next = 0u32;
    for (r, p) in productive.iter().enumerate() {
        id_of_rank[r] = next;
        if *p {
            next += 1;
        }
    }
    report.push("rank_prefix", true, vec![t.elapsed().as_nanos() as u64]);

    let mut labels = vec![Label::Noise; n];
    let id_ref = &id_of_rank;
    let items: Vec<(&mut [Label], &[AtomicU32])> =
        labels.chunks_mut(POINT_CHUNK).zip(winner.chunks(POINT_CHUNK)).collect();
    let nanos = run_items(items, threads, move |(lc, wc): (&mut [Label], &[AtomicU32])| {
        for (slot, w) in lc.iter_mut().zip(wc) {
            let r = w.load(Ordering::Relaxed);
            if r != u32::MAX {
                *slot = Label::Cluster(id_ref[r as usize]);
            }
        }
    });
    report.push("relabel", false, nanos);

    (labels, next as usize)
}

/// Instrumented union-find merge: the full extract + union pipeline at
/// `threads`, returning the outcome plus the per-phase wall breakdown
/// (the benchmark's raw material for the Amdahl model).
pub fn merge_unionfind_report(
    n: usize,
    partials: &[PartialCluster],
    core: &[bool],
    threads: usize,
) -> (MergeOutcome, MergeReport) {
    let mut report = MergeReport::default();
    let total = Instant::now();
    let edges = extract_seed_edges_impl(n, partials, core, threads, &mut report);
    let out = merge_with_edges_impl(n, partials, &edges, threads, &mut report);
    report.total_nanos = total.elapsed().as_nanos() as u64;
    (out, report)
}

/// Merge `partials` into global clusters over `n` points.
///
/// `core[idx]` must say whether global point `idx` is a core point;
/// only core SEEDs trigger merges (see module docs).
pub fn merge_partial_clusters(
    n: usize,
    partials: &[PartialCluster],
    strategy: MergeStrategy,
    core: &[bool],
) -> MergeOutcome {
    merge_partial_clusters_threaded(n, partials, strategy, core, 1)
}

/// [`merge_partial_clusters`] with an explicit worker count for the
/// union-find path (the paper baselines stay literal, i.e. serial).
pub fn merge_partial_clusters_threaded(
    n: usize,
    partials: &[PartialCluster],
    strategy: MergeStrategy,
    core: &[bool],
    threads: usize,
) -> MergeOutcome {
    assert_eq!(core.len(), n, "core flags must cover every point");
    if let MergeStrategy::UnionFind = strategy {
        let edges = extract_seed_edges(n, partials, core, threads);
        return merge_with_edges(n, partials, &edges, threads);
    }

    let mut report = MergeReport::default();
    let owner = fill_owner(n, partials, 1, &mut report);
    let (groups, merge_ops, passes) = match strategy {
        MergeStrategy::PaperSinglePass => paper_groups(partials, &owner, core, false),
        MergeStrategy::PaperFixpoint => paper_groups(partials, &owner, core, true),
        MergeStrategy::UnionFind => unreachable!("handled above"),
    };

    // assemble labels: first assignment wins (DBSCAN border semantics)
    let mut labels = vec![Label::Noise; n];
    let mut cluster_id = 0u32;
    let mut merged_clusters = 0usize;
    for group in &groups {
        if group.is_empty() {
            continue;
        }
        let mut any = false;
        for &i in group {
            for &m in &partials[i].members {
                let slot = &mut labels[m as usize];
                if *slot == Label::Noise {
                    *slot = Label::Cluster(cluster_id);
                    any = true;
                }
            }
        }
        if any {
            cluster_id += 1;
            merged_clusters += 1;
        }
    }

    MergeOutcome {
        clustering: Clustering { labels, core: vec![false; n] },
        merged_clusters,
        merge_ops,
        passes,
    }
}

/// Algorithm 4 as printed (optionally repeated to a fixpoint).
fn paper_groups(
    partials: &[PartialCluster],
    owner: &[u32],
    core: &[bool],
    fixpoint: bool,
) -> (Vec<Vec<usize>>, usize, usize) {
    let m = partials.len();
    // group_of[i]: index of the active group this partial belongs to
    let mut group_of: Vec<usize> = (0..m).collect();
    let mut groups: Vec<Vec<usize>> = (0..m).map(|i| vec![i]).collect();
    let mut merge_ops = 0usize;
    let mut passes = 0usize;

    loop {
        passes += 1;
        let mut merged_this_pass = false;
        // line 1: for i = 0 .. all partial clusters
        for g in 0..groups.len() {
            if groups[g].is_empty() {
                continue; // absorbed earlier ("finished")
            }
            // line 3: identify seeds from the (current) cluster
            let seed_masters: Vec<usize> = {
                let constituents = &groups[g];
                let mut masters = Vec::new();
                for &i in constituents {
                    for s in partials[i].seeds().filter(|&s| core[s as usize]) {
                        let j = owner[s as usize];
                        if j != UNOWNED {
                            let tg = group_of[j as usize];
                            if tg != g {
                                masters.push(tg);
                            }
                        }
                    }
                }
                masters
            };
            // lines 4-8: merge each master into the current cluster
            for tg0 in seed_masters {
                // the master group may itself have been merged meanwhile;
                // chase its current location
                let tg = current_group(&group_of, &groups, tg0);
                if tg == g || groups[tg].is_empty() {
                    continue;
                }
                let absorbed = std::mem::take(&mut groups[tg]);
                for &i in &absorbed {
                    group_of[i] = g;
                }
                groups[g].extend(absorbed);
                merge_ops += 1;
                merged_this_pass = true;
            }
        }
        if !fixpoint || !merged_this_pass {
            break;
        }
    }

    let mut out: Vec<Vec<usize>> = groups.into_iter().filter(|g| !g.is_empty()).collect();
    out.sort_by_key(|g| g.iter().min().copied());
    (out, merge_ops, passes)
}

/// Follow `group_of` to the group that currently holds `g`'s first
/// member (groups may have been drained by earlier merges in the pass).
fn current_group(group_of: &[usize], groups: &[Vec<usize>], g: usize) -> usize {
    if let Some(&first) = groups[g].first() {
        group_of[first]
    } else {
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a partial cluster quickly.
    fn pc(owner: u32, range: (u32, u32), members: &[u32]) -> PartialCluster {
        let mut c = PartialCluster::new(owner, range);
        c.members = members.to_vec();
        c
    }

    const STRATEGIES: [MergeStrategy; 3] =
        [MergeStrategy::PaperSinglePass, MergeStrategy::PaperFixpoint, MergeStrategy::UnionFind];

    #[test]
    fn figure4_example_merges_two_clusters() {
        // C[0]: range 0..2500 with SEED 3000; C[5]: range 2500..5000
        // containing 3000 as a regular element
        let c0 = pc(0, (0, 2500), &[0, 5, 6, 3000, 11, 223, 2300, 23, 45, 1000]);
        let c5 = pc(1, (2500, 5000), &[3000, 2501, 4200, 2800, 2600, 3401, 3678]);
        for s in STRATEGIES {
            let out = merge_partial_clusters(5000, &[c0.clone(), c5.clone()], s, &vec![true; 5000]);
            assert_eq!(out.merged_clusters, 1, "{s:?}");
            assert_eq!(out.merge_ops, 1);
            // every member of both partials has the same label
            let l = out.clustering.labels[0];
            for &m in c0.members.iter().chain(&c5.members) {
                assert_eq!(out.clustering.labels[m as usize], l);
            }
        }
    }

    #[test]
    fn disjoint_partials_stay_separate() {
        let a = pc(0, (0, 10), &[1, 2, 3]);
        let b = pc(1, (10, 20), &[11, 12]);
        for s in STRATEGIES {
            let out = merge_partial_clusters(20, &[a.clone(), b.clone()], s, &[true; 20]);
            assert_eq!(out.merged_clusters, 2, "{s:?}");
            assert_eq!(out.merge_ops, 0);
            assert_ne!(out.clustering.labels[1], out.clustering.labels[11]);
        }
    }

    #[test]
    fn seed_to_unowned_point_is_harmless() {
        // the SEED points at a noise point of the foreign partition
        // (regular member of no partial cluster)
        let a = pc(0, (0, 10), &[1, 2, 15]);
        let b = pc(1, (10, 20), &[11, 12]);
        for s in STRATEGIES {
            let out = merge_partial_clusters(20, &[a.clone(), b.clone()], s, &[true; 20]);
            assert_eq!(out.merged_clusters, 2, "{s:?}");
            // the seed itself still gets cluster a's label (border point)
            assert_eq!(out.clustering.labels[15], out.clustering.labels[1]);
        }
    }

    #[test]
    fn transitive_chain_across_three_partitions() {
        // A --seed--> B --seed--> C: single-pass processes A first and,
        // per the printed algorithm, does not chase B's seeds — catching
        // this divergence is exactly why the hardened modes exist.
        // Here the chain happens to be discovered because the pass also
        // visits B's group (now merged into A) ... single-pass CAN catch
        // chains when order is favourable; build the unfavourable order:
        // C first would finish C before B merges into A.
        let a = pc(0, (0, 10), &[1, 12]); // seed into B's range
        let b = pc(1, (10, 20), &[12, 22]); // seed into C's range
        let c = pc(2, (20, 30), &[22, 25]);
        let partials = [c.clone(), a.clone(), b.clone()]; // C scanned first
        let uf = merge_partial_clusters(30, &partials, MergeStrategy::UnionFind, &[true; 30]);
        assert_eq!(uf.merged_clusters, 1);
        let fx = merge_partial_clusters(30, &partials, MergeStrategy::PaperFixpoint, &[true; 30]);
        assert_eq!(fx.merged_clusters, 1);
        assert!(fx.passes >= 1);
        // single-pass on this order still merges everything reachable
        // through regular-member seeds transitively chased via groups;
        // assert it never *splits* what union-find joins into more
        // clusters than fixpoint + document the count
        let sp = merge_partial_clusters(30, &partials, MergeStrategy::PaperSinglePass, &[true; 30]);
        assert!(sp.merged_clusters >= uf.merged_clusters);
    }

    #[test]
    fn fixpoint_equals_unionfind_on_random_topologies() {
        // pseudo-random seed graphs over k partials
        let mut state = 0x12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50 {
            let k = 2 + (next() % 8) as usize;
            let per = 5u32;
            let n = k as u32 * per;
            let mut partials: Vec<PartialCluster> = (0..k)
                .map(|i| {
                    let a = i as u32 * per;
                    pc(i as u32, (a, a + per), &[a, a + 1])
                })
                .collect();
            // sprinkle random seeds
            for _ in 0..(next() % 10) {
                let from = (next() % k as u64) as usize;
                let to_point = (next() % n as u64) as u32;
                if !partials[from].is_regular(to_point) {
                    partials[from].members.push(to_point);
                }
            }
            let uf = merge_partial_clusters(
                n as usize,
                &partials,
                MergeStrategy::UnionFind,
                &vec![true; n as usize],
            );
            let fx = merge_partial_clusters(
                n as usize,
                &partials,
                MergeStrategy::PaperFixpoint,
                &vec![true; n as usize],
            );
            assert_eq!(uf.merged_clusters, fx.merged_clusters, "trial {trial}");
            assert_eq!(
                uf.clustering.canonicalize().labels,
                fx.clustering.canonicalize().labels,
                "trial {trial}"
            );
        }
    }

    #[test]
    fn empty_input() {
        for s in STRATEGIES {
            let out = merge_partial_clusters(5, &[], s, &[false; 5]);
            assert_eq!(out.merged_clusters, 0);
            assert_eq!(out.clustering.noise_count(), 5);
        }
    }

    #[test]
    fn duplicate_members_after_merge_get_one_label() {
        let a = pc(0, (0, 10), &[1, 12]);
        let b = pc(1, (10, 20), &[12, 13]);
        let out = merge_partial_clusters(20, &[a, b], MergeStrategy::UnionFind, &[true; 20]);
        assert_eq!(out.merged_clusters, 1);
        assert!(out.clustering.labels[12].is_cluster());
    }

    #[test]
    fn border_seed_does_not_weld_clusters() {
        // point 12 is a shared BORDER point: regular member of b, SEED
        // of a — merging would be wrong, the clusters stay apart
        let a = pc(0, (0, 10), &[1, 2, 12]);
        let b = pc(1, (10, 20), &[12, 13, 14]);
        let mut core = vec![true; 20];
        core[12] = false;
        for s in STRATEGIES {
            let out = merge_partial_clusters(20, &[a.clone(), b.clone()], s, &core);
            assert_eq!(out.merged_clusters, 2, "{s:?}: border seed must not merge");
            assert_ne!(out.clustering.labels[1], out.clustering.labels[13]);
            // the border point itself is labeled (first-wins)
            assert!(out.clustering.labels[12].is_cluster());
        }
    }

    #[test]
    fn core_seed_still_welds_clusters() {
        let a = pc(0, (0, 10), &[1, 2, 12]);
        let b = pc(1, (10, 20), &[12, 13, 14]);
        let core = vec![true; 20];
        for s in STRATEGIES {
            let out = merge_partial_clusters(20, &[a.clone(), b.clone()], s, &core);
            assert_eq!(out.merged_clusters, 1, "{s:?}");
        }
    }

    /// Seeded random topology: k partials over disjoint ranges plus
    /// sprinkled cross-partition seeds and random core flags.
    fn random_topology(seed: u64) -> (usize, Vec<PartialCluster>, Vec<bool>) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let k = 2 + (next() % 12) as usize;
        let per = 6u32;
        let n = k as u32 * per;
        let mut partials: Vec<PartialCluster> = (0..k)
            .map(|i| {
                let a = i as u32 * per;
                pc(i as u32, (a, a + per), &[a, a + 1, a + 2])
            })
            .collect();
        for _ in 0..(next() % 24) {
            let from = (next() % k as u64) as usize;
            let to_point = (next() % n as u64) as u32;
            if !partials[from].is_regular(to_point) {
                partials[from].members.push(to_point);
            }
        }
        let core: Vec<bool> = (0..n).map(|_| next() % 4 != 0).collect();
        (n as usize, partials, core)
    }

    #[test]
    fn parallel_merge_is_byte_identical_to_sequential() {
        for trial in 0..60u64 {
            let (n, partials, core) = random_topology(0xABCD + trial);
            let seq = merge_partial_clusters(n, &partials, MergeStrategy::UnionFind, &core);
            for threads in [2, 3, 8] {
                let par = merge_partial_clusters_threaded(
                    n,
                    &partials,
                    MergeStrategy::UnionFind,
                    &core,
                    threads,
                );
                assert_eq!(
                    seq.clustering.labels, par.clustering.labels,
                    "trial {trial} threads {threads}: raw labels diverged"
                );
                assert_eq!(seq.merged_clusters, par.merged_clusters, "trial {trial}");
                assert_eq!(seq.merge_ops, par.merge_ops, "trial {trial}");
            }
        }
    }

    #[test]
    fn two_call_pipeline_equals_one_call() {
        for trial in 0..20u64 {
            let (n, partials, core) = random_topology(0x5EED + trial);
            let whole = merge_partial_clusters(n, &partials, MergeStrategy::UnionFind, &core);
            let edges = extract_seed_edges(n, &partials, &core, 4);
            let split = merge_with_edges(n, &partials, &edges, 4);
            assert_eq!(whole.clustering.labels, split.clustering.labels, "trial {trial}");
            assert_eq!(whole.merge_ops, split.merge_ops, "trial {trial}");
        }
    }

    #[test]
    fn merge_report_phases_cover_the_pipeline() {
        let (n, partials, core) = random_topology(42);
        let (out, rep) = merge_unionfind_report(n, &partials, &core, 1);
        let seq = merge_partial_clusters(n, &partials, MergeStrategy::UnionFind, &core);
        assert_eq!(out.clustering.labels, seq.clustering.labels);
        for phase in ["owner_fill", "edge_extract", "seal", "winner_rank", "relabel"] {
            assert!(
                rep.phases.iter().any(|p| p.name == phase),
                "missing phase {phase} in {:?}",
                rep.phases.iter().map(|p| p.name).collect::<Vec<_>>()
            );
        }
        // at k=1 the model is exactly the serial critical path
        assert_eq!(rep.modeled_makespan_nanos(1), rep.serial_nanos());
        assert!(rep.modeled_makespan_nanos(8) <= rep.serial_nanos());
    }

    #[test]
    fn partition_windows_detects_canonical_grouping() {
        let a = pc(0, (0, 10), &[1, 2]);
        let a2 = pc(0, (0, 10), &[5]);
        let b = pc(1, (10, 20), &[11]);
        let w = partition_windows(&[a.clone(), a2, b.clone()]).expect("grouped input");
        assert_eq!(w, vec![(0, 10, 0, 2), (10, 20, 2, 3)]);
        // out-of-order ranges are rejected (serial fallback)
        assert!(partition_windows(&[b, a]).is_none());
    }
}
