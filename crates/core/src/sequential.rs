//! Sequential DBSCAN — Algorithm 1 of the paper (Ester et al. 1996),
//! with the queue-based expansion the Spark version also uses: a
//! `VecDeque` for the candidate queue (the paper's Java `LinkedList`
//! queue) and a visited set (the paper's `Hashtable`).

use crate::label::{Clustering, Label};
use crate::params::DbscanParams;
use dbscan_spatial::{BkdTree, Dataset, PointId, QueryScratch, SpatialIndex};
use std::collections::VecDeque;
use std::sync::Arc;

/// The single-machine reference implementation.
#[derive(Debug, Clone, Copy)]
pub struct SequentialDbscan {
    params: DbscanParams,
}

impl SequentialDbscan {
    /// Configure with the given parameters.
    pub fn new(params: DbscanParams) -> Self {
        SequentialDbscan { params }
    }

    /// The parameters.
    pub fn params(&self) -> DbscanParams {
        self.params
    }

    /// Run over a dataset, building a bucketed kd-tree internally and
    /// querying it through one reusable [`QueryScratch`], so the whole
    /// expansion performs no per-query allocation.
    ///
    /// Note: code comparing implementations should prefer the uniform
    /// [`crate::runner::DbscanRunner`] facade.
    pub fn run(&self, data: Arc<Dataset>) -> Clustering {
        let tree = BkdTree::build(Arc::clone(&data));
        let eps = self.params.eps;
        let mut scratch = QueryScratch::new();
        self.run_with_neighbors(tree.dataset().len(), |q, out| {
            tree.range_into_scratch(tree.dataset().point(PointId(q)), eps, &mut scratch, out);
        })
    }

    /// Run with a caller-provided spatial index (bucketed or classic
    /// kd-tree, brute force, grid — anything implementing
    /// [`SpatialIndex`]).
    pub fn run_with_index(&self, index: &dyn SpatialIndex) -> Clustering {
        let data = index.dataset();
        let eps = self.params.eps;
        self.run_with_neighbors(data.len(), |q, out| {
            index.range_into(data.point(PointId(q)), eps, out);
        })
    }

    /// The queue-based expansion (Algorithm 1), generic over the
    /// eps-neighborhood source: `neighbors_of(q, out)` appends the
    /// neighbours of point `q` to `out` without clearing it.
    fn run_with_neighbors(
        &self,
        n: usize,
        mut neighbors_of: impl FnMut(u32, &mut Vec<PointId>),
    ) -> Clustering {
        let min_pts = self.params.min_pts;

        let mut labels = vec![Label::Noise; n];
        let mut core = vec![false; n];
        let mut visited = vec![false; n];
        let mut assigned = vec![false; n];
        let mut next_cluster = 0u32;

        // reusable buffers (workhorse-collection pattern)
        let mut neighbors: Vec<PointId> = Vec::new();
        let mut queue: VecDeque<u32> = VecDeque::new();

        for p in 0..n as u32 {
            if visited[p as usize] {
                continue;
            }
            visited[p as usize] = true;
            neighbors.clear();
            neighbors_of(p, &mut neighbors);
            if neighbors.len() < min_pts {
                // noise for now; may become a border point later
                continue;
            }
            // p is a core point: start a new cluster and expand
            core[p as usize] = true;
            let cid = next_cluster;
            next_cluster += 1;
            labels[p as usize] = Label::Cluster(cid);
            assigned[p as usize] = true;

            queue.clear();
            for &q in &neighbors {
                queue.push_back(q.0);
            }
            while let Some(q) = queue.pop_front() {
                let qi = q as usize;
                if !visited[qi] {
                    visited[qi] = true;
                    neighbors.clear();
                    neighbors_of(q, &mut neighbors);
                    if neighbors.len() >= min_pts {
                        core[qi] = true;
                        for &r in &neighbors {
                            // enqueue everything; visited/assigned checks
                            // on dequeue keep this linear
                            queue.push_back(r.0);
                        }
                    }
                }
                if !assigned[qi] {
                    labels[qi] = Label::Cluster(cid);
                    assigned[qi] = true;
                }
            }
        }
        Clustering { labels, core }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbscan_spatial::BruteForceIndex;

    fn run(rows: Vec<Vec<f64>>, eps: f64, min_pts: usize) -> Clustering {
        let ds = Arc::new(Dataset::from_rows(rows));
        SequentialDbscan::new(DbscanParams::new(eps, min_pts).unwrap()).run(ds)
    }

    #[test]
    fn two_blobs_and_noise() {
        let mut rows = Vec::new();
        for i in 0..10 {
            rows.push(vec![i as f64 * 0.1, 0.0]); // blob A
            rows.push(vec![100.0 + i as f64 * 0.1, 0.0]); // blob B
        }
        rows.push(vec![50.0, 50.0]); // outlier
        let c = run(rows, 0.5, 3);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.noise_count(), 1);
        assert_eq!(c.labels[20], Label::Noise);
    }

    #[test]
    fn single_cluster_chain_is_density_connected() {
        // points 1.0 apart, eps 1.1: a chain forms one cluster
        let rows = (0..20).map(|i| vec![i as f64]).collect();
        let c = run(rows, 1.1, 2);
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.noise_count(), 0);
        assert_eq!(c.core_count(), 20);
    }

    #[test]
    fn chain_breaks_without_density() {
        // same chain, minpts 3: interior points have 3 neighbors
        // (self + 2), endpoints only 2 -> endpoints are border points
        let rows = (0..20).map(|i| vec![i as f64]).collect();
        let c = run(rows, 1.1, 3);
        assert_eq!(c.num_clusters(), 1);
        assert!(!c.core[0] && !c.core[19]);
        assert!(c.labels[0].is_cluster(), "endpoint is border, not noise");
    }

    #[test]
    fn all_noise_when_sparse() {
        let rows = (0..10).map(|i| vec![i as f64 * 100.0]).collect();
        let c = run(rows, 1.0, 2);
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.noise_count(), 10);
    }

    #[test]
    fn empty_dataset() {
        let ds = Arc::new(Dataset::empty(3));
        let c = SequentialDbscan::new(DbscanParams::paper()).run(ds);
        assert!(c.is_empty());
        assert_eq!(c.num_clusters(), 0);
    }

    #[test]
    fn single_point_is_noise_unless_minpts_one() {
        let c1 = run(vec![vec![0.0]], 1.0, 2);
        assert_eq!(c1.noise_count(), 1);
        let c2 = run(vec![vec![0.0]], 1.0, 1);
        assert_eq!(c2.num_clusters(), 1);
        assert!(c2.core[0]);
    }

    #[test]
    fn duplicates_cluster_together() {
        let rows = vec![vec![1.0, 1.0]; 6];
        let c = run(rows, 0.0, 5);
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.core_count(), 6);
    }

    #[test]
    fn min_pts_counts_the_point_itself() {
        // 3 points pairwise within eps: each has neighborhood size 3
        let rows = vec![vec![0.0], vec![0.3], vec![0.6]];
        let yes = run(rows.clone(), 0.7, 3);
        assert_eq!(yes.num_clusters(), 1);
        let no = run(rows, 0.7, 4);
        assert_eq!(no.num_clusters(), 0);
    }

    #[test]
    fn index_choice_does_not_change_result() {
        let rows: Vec<Vec<f64>> =
            (0..60).map(|i| vec![(i % 10) as f64, (i / 10) as f64 * 0.3]).collect();
        let ds = Arc::new(Dataset::from_rows(rows));
        let alg = SequentialDbscan::new(DbscanParams::new(1.2, 4).unwrap());
        let via_tree = alg.run_with_index(&dbscan_spatial::KdTree::build(Arc::clone(&ds)));
        let via_scan = alg.run_with_index(&BruteForceIndex::new(Arc::clone(&ds)));
        let via_bkd = alg.run(Arc::clone(&ds)); // default path: bucketed tree + scratch
        assert_eq!(via_tree.canonicalize(), via_scan.canonicalize());
        assert_eq!(via_bkd.canonicalize(), via_scan.canonicalize());
    }

    #[test]
    fn border_point_between_two_clusters_gets_exactly_one() {
        // two dense pairs with one shared border point in the middle
        let rows = vec![
            vec![0.0],
            vec![0.5], // cluster A cores (eps 0.6, minpts 2 w/ self->3? )
            vec![5.0],
            vec![5.5],  // cluster B cores
            vec![2.75], // border of neither (too far) -> noise
        ];
        let c = run(rows, 0.6, 2);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.labels[4], Label::Noise);
    }
}
