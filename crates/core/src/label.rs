//! Clustering results.

use serde::{Deserialize, Serialize};

/// A point's final assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Not density-reachable from any core point.
    Noise,
    /// Member of the cluster with this id.
    Cluster(u32),
}

impl Label {
    /// Whether this is a cluster assignment.
    pub fn is_cluster(self) -> bool {
        matches!(self, Label::Cluster(_))
    }
}

/// The result of a DBSCAN run: one label per point (by index), plus
/// core-point flags (core points are what all correct DBSCAN variants
/// must agree on).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    /// Label per point, indexed by point id.
    pub labels: Vec<Label>,
    /// `true` where the point is a core point.
    pub core: Vec<bool>,
}

impl Clustering {
    /// An all-noise clustering of `n` points.
    pub fn all_noise(n: usize) -> Self {
        Clustering { labels: vec![Label::Noise; n], core: vec![false; n] }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether there are no points.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct clusters.
    pub fn num_clusters(&self) -> usize {
        let mut ids: Vec<u32> = self
            .labels
            .iter()
            .filter_map(|l| match l {
                Label::Cluster(c) => Some(*c),
                Label::Noise => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Number of noise points.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| **l == Label::Noise).count()
    }

    /// Number of core points.
    pub fn core_count(&self) -> usize {
        self.core.iter().filter(|c| **c).count()
    }

    /// Sizes of each cluster, keyed by cluster id.
    pub fn cluster_sizes(&self) -> std::collections::BTreeMap<u32, usize> {
        let mut sizes = std::collections::BTreeMap::new();
        for l in &self.labels {
            if let Label::Cluster(c) = l {
                *sizes.entry(*c).or_insert(0) += 1;
            }
        }
        sizes
    }

    /// Canonical relabeling: clusters renumbered `0..k` in order of their
    /// smallest member index. Two clusterings that partition points the
    /// same way become identical after canonicalization.
    pub fn canonicalize(&self) -> Clustering {
        let mut first_seen: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut next = 0u32;
        let labels = self
            .labels
            .iter()
            .map(|l| match l {
                Label::Noise => Label::Noise,
                Label::Cluster(c) => {
                    let id = *first_seen.entry(*c).or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    });
                    Label::Cluster(id)
                }
            })
            .collect();
        Clustering { labels, core: self.core.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Clustering {
        Clustering {
            labels: vec![
                Label::Cluster(7),
                Label::Cluster(7),
                Label::Noise,
                Label::Cluster(3),
                Label::Cluster(7),
            ],
            core: vec![true, false, false, true, true],
        }
    }

    #[test]
    fn counts() {
        let c = sample();
        assert_eq!(c.len(), 5);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.noise_count(), 1);
        assert_eq!(c.core_count(), 3);
    }

    #[test]
    fn sizes() {
        let sizes = sample().cluster_sizes();
        assert_eq!(sizes[&7], 3);
        assert_eq!(sizes[&3], 1);
    }

    #[test]
    fn canonicalize_renumbers_by_first_appearance() {
        let c = sample().canonicalize();
        assert_eq!(
            c.labels,
            vec![
                Label::Cluster(0),
                Label::Cluster(0),
                Label::Noise,
                Label::Cluster(1),
                Label::Cluster(0)
            ]
        );
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let c = sample().canonicalize();
        assert_eq!(c, c.canonicalize());
    }

    #[test]
    fn all_noise() {
        let c = Clustering::all_noise(3);
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.noise_count(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn label_is_cluster() {
        assert!(Label::Cluster(0).is_cluster());
        assert!(!Label::Noise.is_cluster());
    }
}
