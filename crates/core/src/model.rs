//! Partitions and partial clusters — the paper's core data model.

use serde::{Deserialize, Serialize};

/// The contiguous index-range partitioning of `n` points into `p`
/// partitions (Fig. 4's "Range: 0 -- 2499").
///
/// Represented as `p + 1` sorted cut points `cuts[0] = 0 <= cuts[1] <=
/// ... <= cuts[p] = n`; partition `i` owns `[cuts[i], cuts[i+1])`. The
/// equal-count constructor ([`PartitionRanges::new`]) reproduces the
/// paper's `[i*n/p, (i+1)*n/p)` split exactly; the cost-balanced planner
/// ([`crate::partitioned::planner`]) supplies arbitrary contiguous cuts
/// through [`PartitionRanges::from_cuts`]. SEED semantics only require
/// ranges to be contiguous and ordered, which every cut vector satisfies
/// by construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionRanges {
    n: u32,
    cuts: Vec<u32>,
}

impl PartitionRanges {
    /// Partition `n` points into `p` equal-count contiguous ranges
    /// (partition `i` owns `[i*n/p, (i+1)*n/p)`, as in the paper).
    pub fn new(n: usize, p: usize) -> Self {
        let p = p.max(1);
        let cuts = (0..=p as u64).map(|i| (i * n as u64 / p as u64) as u32).collect();
        PartitionRanges { n: n as u32, cuts }
    }

    /// Partition `n` points along explicit cut points. `cuts` must have
    /// length `p + 1 >= 2`, start at `0`, end at `n`, and be
    /// non-decreasing (empty partitions are allowed).
    pub fn from_cuts(n: usize, cuts: Vec<u32>) -> Self {
        assert!(cuts.len() >= 2, "need at least one partition");
        assert_eq!(cuts[0], 0, "first cut must be 0");
        assert_eq!(*cuts.last().unwrap() as usize, n, "last cut must be n");
        assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "cuts must be sorted");
        PartitionRanges { n: n as u32, cuts }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.cuts.len() - 1
    }

    /// Total number of points.
    pub fn num_points(&self) -> usize {
        self.n as usize
    }

    /// The cut points (`num_partitions() + 1` sorted values from `0` to
    /// `n`).
    pub fn cut_points(&self) -> &[u32] {
        &self.cuts
    }

    /// The half-open index range `[start, end)` of partition `i`.
    pub fn range(&self, i: usize) -> (u32, u32) {
        (self.cuts[i], self.cuts[i + 1])
    }

    /// Which partition owns point `idx`.
    pub fn partition_of(&self, idx: u32) -> usize {
        debug_assert!(idx < self.n);
        // last cut <= idx; empty partitions share a cut value but only
        // the rightmost of them contains idx, which is what this finds
        let i = self.cuts.partition_point(|&c| c <= idx) - 1;
        debug_assert!(self.contains(i, idx));
        i
    }

    /// Whether `idx` lies in partition `i`.
    pub fn contains(&self, i: usize, idx: u32) -> bool {
        let (a, b) = self.range(i);
        idx >= a && idx < b
    }
}

/// Merge status of a partial cluster (Algorithm 4 / Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartialStatus {
    /// Not yet considered by the merge loop.
    Unfinished,
    /// Merged (either absorbed into another cluster or closed out).
    Finished,
}

/// A partial cluster built inside one executor.
///
/// `members` holds global point indices; members **inside** the owner's
/// range are regular elements, members **outside** it are SEEDs ("the
/// SEEDs are not related to the locations\[;\] if the current point's
/// index is beyond the range of \[the\] current partition it is taken as a
/// SEED").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialCluster {
    /// Partition that built this cluster.
    pub owner: u32,
    /// The owner's index range `[start, end)`.
    pub range: (u32, u32),
    /// Regular members and SEEDs.
    pub members: Vec<u32>,
}

impl PartialCluster {
    /// New empty partial cluster for a partition.
    pub fn new(owner: u32, range: (u32, u32)) -> Self {
        PartialCluster { owner, range, members: Vec::new() }
    }

    /// Whether an index is a regular element (inside the owner's range).
    pub fn is_regular(&self, idx: u32) -> bool {
        idx >= self.range.0 && idx < self.range.1
    }

    /// The SEEDs: members outside the owner's range.
    pub fn seeds(&self) -> impl Iterator<Item = u32> + '_ {
        self.members.iter().copied().filter(|&m| !self.is_regular(m))
    }

    /// Regular members only.
    pub fn regulars(&self) -> impl Iterator<Item = u32> + '_ {
        self.members.iter().copied().filter(|&m| self.is_regular(m))
    }

    /// Number of members (regulars + SEEDs).
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_everything_exactly_once() {
        for (n, p) in [(10usize, 3usize), (5000, 2), (7, 7), (100, 1), (13, 5)] {
            let r = PartitionRanges::new(n, p);
            let mut covered = vec![0u8; n];
            for i in 0..p {
                let (a, b) = r.range(i);
                for x in a..b {
                    covered[x as usize] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "n={n} p={p}");
        }
    }

    #[test]
    fn paper_example_ranges() {
        // Fig. 4: 5000 points, 2 partitions -> 0..2499 and 2500..4999
        let r = PartitionRanges::new(5000, 2);
        assert_eq!(r.range(0), (0, 2500));
        assert_eq!(r.range(1), (2500, 5000));
        assert_eq!(r.partition_of(2499), 0);
        assert_eq!(r.partition_of(2500), 1);
        assert_eq!(r.partition_of(3000), 1);
    }

    #[test]
    fn partition_of_agrees_with_ranges() {
        for (n, p) in [(100usize, 7usize), (1001, 13), (64, 64)] {
            let r = PartitionRanges::new(n, p);
            for idx in 0..n as u32 {
                let i = r.partition_of(idx);
                assert!(r.contains(i, idx), "n={n} p={p} idx={idx} -> {i}");
            }
        }
    }

    #[test]
    fn more_partitions_than_points() {
        let r = PartitionRanges::new(3, 10);
        let total: u32 = (0..10).map(|i| r.range(i)).map(|(a, b)| b - a).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn from_cuts_partitions_everything_exactly_once() {
        let r = PartitionRanges::from_cuts(10, vec![0, 4, 4, 9, 10]);
        assert_eq!(r.num_partitions(), 4);
        assert_eq!(r.range(0), (0, 4));
        assert_eq!(r.range(1), (4, 4)); // empty partition allowed
        assert_eq!(r.range(2), (4, 9));
        assert_eq!(r.range(3), (9, 10));
        let mut covered = [0u8; 10];
        for i in 0..4 {
            let (a, b) = r.range(i);
            for x in a..b {
                covered[x as usize] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
        // partition_of skips the empty partition at the shared cut
        assert_eq!(r.partition_of(3), 0);
        assert_eq!(r.partition_of(4), 2);
        assert_eq!(r.partition_of(9), 3);
    }

    #[test]
    fn equal_count_cuts_match_closed_form() {
        for (n, p) in [(10usize, 3usize), (5000, 2), (7, 7), (100, 1), (13, 5), (3, 10)] {
            let r = PartitionRanges::new(n, p);
            for i in 0..p.max(1) {
                let (a, b) = r.range(i);
                assert_eq!(a as u64, i as u64 * n as u64 / p.max(1) as u64);
                assert_eq!(b as u64, (i as u64 + 1) * n as u64 / p.max(1) as u64);
            }
        }
    }

    #[test]
    #[should_panic(expected = "last cut must be n")]
    fn from_cuts_rejects_short_coverage() {
        let _ = PartitionRanges::from_cuts(10, vec![0, 4, 9]);
    }

    #[test]
    #[should_panic(expected = "cuts must be sorted")]
    fn from_cuts_rejects_unsorted() {
        let _ = PartitionRanges::from_cuts(10, vec![0, 6, 4, 10]);
    }

    #[test]
    fn partition_ranges_serde_roundtrip() {
        let r = PartitionRanges::from_cuts(10, vec![0, 4, 4, 9, 10]);
        let json = serde_json::to_string(&r).unwrap();
        let back: PartitionRanges = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn seeds_are_out_of_range_members() {
        // Fig. 4a: C[0] has range 0..2500 and contains 3000 as a SEED
        let mut c = PartialCluster::new(0, (0, 2500));
        c.members = vec![0, 5, 6, 3000, 11, 223, 2300, 23, 45, 1000];
        assert!(c.is_regular(0) && c.is_regular(2300));
        assert!(!c.is_regular(3000));
        assert_eq!(c.seeds().collect::<Vec<_>>(), vec![3000]);
        assert_eq!(c.regulars().count(), 9);
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn serde_roundtrip() {
        let mut c = PartialCluster::new(1, (10, 20));
        c.members = vec![10, 11, 25];
        let json = serde_json::to_string(&c).unwrap();
        let back: PartialCluster = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
