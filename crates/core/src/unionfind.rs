//! Disjoint-set (union-find) with path compression and union by rank.
//!
//! Used by [`crate::MergeStrategy::UnionFind`] — and a nod to the
//! disjoint-set parallel DBSCAN of Patwary et al. (SC'12), the baseline
//! the paper compares its cluster quality against.

/// Classic array-based disjoint set over `0..n`.
#[derive(Debug, Clone)]
pub struct DisjointSet {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl DisjointSet {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSet { parent: (0..n).collect(), rank: vec![0; n], components: n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // compress
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut d = DisjointSet::new(4);
        assert_eq!(d.components(), 4);
        assert!(!d.connected(0, 1));
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn union_connects_transitively() {
        let mut d = DisjointSet::new(5);
        assert!(d.union(0, 1));
        assert!(d.union(1, 2));
        assert!(d.connected(0, 2));
        assert_eq!(d.components(), 3);
        assert!(!d.union(0, 2), "already connected");
        assert_eq!(d.components(), 3);
    }

    #[test]
    fn find_is_stable_per_component() {
        let mut d = DisjointSet::new(6);
        d.union(0, 1);
        d.union(2, 3);
        d.union(1, 3);
        let r = d.find(0);
        for x in [1, 2, 3] {
            assert_eq!(d.find(x), r);
        }
        assert_ne!(d.find(4), r);
    }

    #[test]
    fn long_chain_compresses() {
        let n = 1000;
        let mut d = DisjointSet::new(n);
        for i in 1..n {
            d.union(i - 1, i);
        }
        assert_eq!(d.components(), 1);
        assert!(d.connected(0, n - 1));
    }

    #[test]
    fn empty_set() {
        let d = DisjointSet::new(0);
        assert!(d.is_empty());
        assert_eq!(d.components(), 0);
    }
}
