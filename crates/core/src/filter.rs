//! Small-partial-cluster filtering.
//!
//! For the 1M-point runs the paper reports: "we filter out those partial
//! clusters whose size is too small, and their removal does not impact
//! the accuracy significantly" — it bounds the driver's merge cost,
//! which otherwise grows with the number of partial clusters (Fig. 6b).

use crate::model::PartialCluster;

/// Keep only partial clusters with at least `min_size` *regular*
/// members (SEEDs don't count — a cluster that is all SEEDs carries no
/// local evidence).
pub fn filter_small_partials(
    partials: Vec<PartialCluster>,
    min_size: usize,
) -> Vec<PartialCluster> {
    partials.into_iter().filter(|c| c.regulars().count() >= min_size).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc(range: (u32, u32), members: &[u32]) -> PartialCluster {
        let mut c = PartialCluster::new(0, range);
        c.members = members.to_vec();
        c
    }

    #[test]
    fn drops_below_threshold() {
        let partials = vec![pc((0, 10), &[1, 2, 3]), pc((0, 10), &[4]), pc((0, 10), &[5, 6])];
        let kept = filter_small_partials(partials, 2);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn seeds_do_not_count_toward_size() {
        // 1 regular + 2 seeds: below a threshold of 2
        let partials = vec![pc((0, 10), &[1, 15, 20])];
        assert!(filter_small_partials(partials.clone(), 2).is_empty());
        assert_eq!(filter_small_partials(partials, 1).len(), 1);
    }

    #[test]
    fn zero_threshold_keeps_everything() {
        let partials = vec![pc((0, 10), &[]), pc((0, 10), &[1])];
        assert_eq!(filter_small_partials(partials, 0).len(), 2);
    }
}
