//! DBSCAN parameters.

/// Why a [`DbscanParams`] constructor rejected its inputs.
///
/// Marked `#[non_exhaustive]`: future constraints (e.g. dimensionality
/// caps) may add variants without a breaking change, so downstream
/// `match`es need a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ParamError {
    /// `eps` was negative, NaN or infinite.
    InvalidEps {
        /// The rejected value.
        eps: f64,
    },
    /// `min_pts` was zero (the threshold counts the point itself, so the
    /// smallest meaningful value is 1).
    ZeroMinPts,
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::InvalidEps { eps } => {
                write!(f, "eps must be finite and non-negative, got {eps}")
            }
            ParamError::ZeroMinPts => write!(f, "min_pts must be at least 1"),
        }
    }
}

impl std::error::Error for ParamError {}

/// The two DBSCAN parameters: neighborhood radius and density threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighborhood radius (`eps`).
    pub eps: f64,
    /// Minimum neighborhood size (including the point itself) for a core
    /// point (`minpts`).
    pub min_pts: usize,
}

impl DbscanParams {
    /// Validated constructor.
    ///
    /// # Errors
    /// Rejects non-finite or negative `eps`
    /// ([`ParamError::InvalidEps`]) and `min_pts == 0`
    /// ([`ParamError::ZeroMinPts`]).
    pub fn new(eps: f64, min_pts: usize) -> Result<Self, ParamError> {
        if !eps.is_finite() || eps < 0.0 {
            return Err(ParamError::InvalidEps { eps });
        }
        if min_pts == 0 {
            return Err(ParamError::ZeroMinPts);
        }
        Ok(DbscanParams { eps, min_pts })
    }

    /// The paper's Table I parameters: `eps = 25`, `minpts = 5`.
    pub fn paper() -> Self {
        DbscanParams { eps: 25.0, min_pts: 5 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid() {
        let p = DbscanParams::new(0.5, 3).unwrap();
        assert_eq!(p.eps, 0.5);
        assert_eq!(p.min_pts, 3);
    }

    #[test]
    fn rejects_bad_eps() {
        assert!(matches!(
            DbscanParams::new(-1.0, 3),
            Err(ParamError::InvalidEps { eps }) if eps == -1.0
        ));
        assert!(matches!(DbscanParams::new(f64::NAN, 3), Err(ParamError::InvalidEps { .. })));
        assert!(matches!(DbscanParams::new(f64::INFINITY, 3), Err(ParamError::InvalidEps { .. })));
    }

    #[test]
    fn rejects_zero_min_pts() {
        assert_eq!(DbscanParams::new(1.0, 0), Err(ParamError::ZeroMinPts));
    }

    #[test]
    fn param_errors_display_and_implement_error() {
        let e: Box<dyn std::error::Error> = Box::new(ParamError::ZeroMinPts);
        assert!(e.to_string().contains("min_pts"));
        let e = DbscanParams::new(f64::NAN, 3).unwrap_err();
        assert!(e.to_string().contains("eps"), "{e}");
    }

    #[test]
    fn zero_eps_is_allowed() {
        // degenerate but well-defined: only exact duplicates are neighbors
        assert!(DbscanParams::new(0.0, 2).is_ok());
    }

    #[test]
    fn paper_params() {
        let p = DbscanParams::paper();
        assert_eq!(p.eps, 25.0);
        assert_eq!(p.min_pts, 5);
    }
}
