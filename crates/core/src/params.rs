//! DBSCAN parameters.

/// The two DBSCAN parameters: neighborhood radius and density threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanParams {
    /// Neighborhood radius (`eps`).
    pub eps: f64,
    /// Minimum neighborhood size (including the point itself) for a core
    /// point (`minpts`).
    pub min_pts: usize,
}

impl DbscanParams {
    /// Validated constructor.
    ///
    /// # Errors
    /// Rejects non-finite or negative `eps` and `min_pts == 0`.
    pub fn new(eps: f64, min_pts: usize) -> Result<Self, String> {
        if !eps.is_finite() || eps < 0.0 {
            return Err(format!("eps must be finite and non-negative, got {eps}"));
        }
        if min_pts == 0 {
            return Err("min_pts must be at least 1".to_string());
        }
        Ok(DbscanParams { eps, min_pts })
    }

    /// The paper's Table I parameters: `eps = 25`, `minpts = 5`.
    pub fn paper() -> Self {
        DbscanParams { eps: 25.0, min_pts: 5 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid() {
        let p = DbscanParams::new(0.5, 3).unwrap();
        assert_eq!(p.eps, 0.5);
        assert_eq!(p.min_pts, 3);
    }

    #[test]
    fn rejects_bad_eps() {
        assert!(DbscanParams::new(-1.0, 3).is_err());
        assert!(DbscanParams::new(f64::NAN, 3).is_err());
        assert!(DbscanParams::new(f64::INFINITY, 3).is_err());
    }

    #[test]
    fn rejects_zero_min_pts() {
        assert!(DbscanParams::new(1.0, 0).is_err());
    }

    #[test]
    fn zero_eps_is_allowed() {
        // degenerate but well-defined: only exact duplicates are neighbors
        assert!(DbscanParams::new(0.0, 2).is_ok());
    }

    #[test]
    fn paper_params() {
        let p = DbscanParams::paper();
        assert_eq!(p.eps, 25.0);
        assert_eq!(p.min_pts, 5);
    }
}
