//! Datanodes: the storage workers.
//!
//! Each datanode holds block replicas in memory behind a lock, tracks I/O
//! counters, and can be "killed" to exercise the replica-fallback path —
//! the fault the paper's MPI-vs-frameworks discussion is about (one dead
//! worker must not take the job down).

use crate::block::BlockId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a datanode within a [`crate::DfsCluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// One storage worker.
#[derive(Debug)]
pub struct DataNode {
    id: NodeId,
    blocks: RwLock<HashMap<BlockId, Arc<Vec<u8>>>>,
    alive: AtomicBool,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl DataNode {
    /// Create an empty, alive datanode.
    pub fn new(id: NodeId) -> Self {
        DataNode {
            id,
            blocks: RwLock::new(HashMap::new()),
            alive: AtomicBool::new(true),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether the node is serving requests.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Simulate a crash: the node stops serving reads/writes. Stored
    /// replicas are dropped (as if the disk became unreachable).
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
        self.blocks.write().clear();
    }

    /// Bring the node back, empty (replicas must be re-replicated).
    pub fn revive(&self) {
        self.alive.store(true, Ordering::Release);
    }

    /// Store a replica. Returns `false` when the node is dead.
    pub fn put(&self, id: BlockId, data: Arc<Vec<u8>>) -> bool {
        if !self.is_alive() {
            return false;
        }
        self.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.blocks.write().insert(id, data);
        true
    }

    /// Fetch a replica. `None` when dead or missing.
    pub fn get(&self, id: BlockId) -> Option<Arc<Vec<u8>>> {
        if !self.is_alive() {
            return None;
        }
        let data = self.blocks.read().get(&id).cloned()?;
        self.bytes_read.fetch_add(data.len() as u64, Ordering::Relaxed);
        Some(data)
    }

    /// Drop a replica (namenode-initiated delete).
    pub fn evict(&self, id: BlockId) {
        self.blocks.write().remove(&id);
    }

    /// Number of replicas currently stored.
    pub fn replica_count(&self) -> usize {
        self.blocks.read().len()
    }

    /// Total bytes held.
    pub fn used_bytes(&self) -> u64 {
        self.blocks.read().values().map(|b| b.len() as u64).sum()
    }

    /// Lifetime write volume in bytes.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Lifetime read volume in bytes.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let n = DataNode::new(NodeId(0));
        assert!(n.put(BlockId(1), Arc::new(vec![1, 2, 3])));
        assert_eq!(n.get(BlockId(1)).unwrap().as_slice(), &[1, 2, 3]);
        assert_eq!(n.replica_count(), 1);
        assert_eq!(n.used_bytes(), 3);
    }

    #[test]
    fn missing_block_is_none() {
        let n = DataNode::new(NodeId(0));
        assert!(n.get(BlockId(9)).is_none());
    }

    #[test]
    fn killed_node_rejects_io_and_drops_data() {
        let n = DataNode::new(NodeId(3));
        n.put(BlockId(1), Arc::new(vec![0; 8]));
        n.kill();
        assert!(!n.is_alive());
        assert!(n.get(BlockId(1)).is_none());
        assert!(!n.put(BlockId(2), Arc::new(vec![1])));
        assert_eq!(n.replica_count(), 0);
    }

    #[test]
    fn revive_restores_service_but_not_data() {
        let n = DataNode::new(NodeId(0));
        n.put(BlockId(1), Arc::new(vec![9]));
        n.kill();
        n.revive();
        assert!(n.is_alive());
        assert!(n.get(BlockId(1)).is_none());
        assert!(n.put(BlockId(2), Arc::new(vec![1])));
    }

    #[test]
    fn io_counters_accumulate() {
        let n = DataNode::new(NodeId(0));
        n.put(BlockId(1), Arc::new(vec![0; 10]));
        n.get(BlockId(1));
        n.get(BlockId(1));
        assert_eq!(n.bytes_written(), 10);
        assert_eq!(n.bytes_read(), 20);
    }

    #[test]
    fn evict_removes_replica() {
        let n = DataNode::new(NodeId(0));
        n.put(BlockId(1), Arc::new(vec![1]));
        n.evict(BlockId(1));
        assert!(n.get(BlockId(1)).is_none());
    }
}
