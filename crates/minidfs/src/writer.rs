//! Streaming writer: chunks a byte stream into replicated blocks.

use crate::cluster::DfsCluster;
use crate::error::DfsResult;
use std::io::{self, Write};

/// A `std::io::Write` adapter that accumulates `block_size` bytes and
/// commits each full block to the cluster. Call [`DfsWriter::close`] to
/// flush the trailing partial block; dropping without `close` loses the
/// tail (mirroring HDFS semantics where an unclosed file is truncated to
/// its last completed block).
pub struct DfsWriter<'a> {
    cluster: &'a DfsCluster,
    path: String,
    block_size: usize,
    buf: Vec<u8>,
    written: usize,
}

impl<'a> DfsWriter<'a> {
    pub(crate) fn new(cluster: &'a DfsCluster, path: String, block_size: usize) -> Self {
        DfsWriter { cluster, path, block_size, buf: Vec::with_capacity(block_size), written: 0 }
    }

    /// Bytes accepted so far (committed + buffered).
    pub fn bytes_written(&self) -> usize {
        self.written
    }

    /// Flush the final partial block and finish the file.
    pub fn close(mut self) -> DfsResult<()> {
        if !self.buf.is_empty() {
            let tail = std::mem::take(&mut self.buf);
            self.cluster.store_block(&self.path, tail)?;
        }
        Ok(())
    }
}

impl Write for DfsWriter<'_> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut rest = data;
        while !rest.is_empty() {
            let room = self.block_size - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == self.block_size {
                let full = std::mem::replace(&mut self.buf, Vec::with_capacity(self.block_size));
                self.cluster.store_block(&self.path, full).map_err(io::Error::from)?;
            }
        }
        self.written += data.len();
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // partial blocks are only committed on close(), like HDFS hflush
        // semantics at block granularity; nothing to do here.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{DfsCluster, DfsConfig};

    fn cluster() -> DfsCluster {
        DfsCluster::new(DfsConfig { num_datanodes: 2, replication: 1, block_size: 4 }).unwrap()
    }

    #[test]
    fn incremental_writes_assemble_blocks() {
        let dfs = cluster();
        let mut w = dfs.create("/f").unwrap();
        w.write_all(&[1, 2]).unwrap();
        w.write_all(&[3, 4, 5]).unwrap();
        w.write_all(&[6, 7, 8, 9, 10]).unwrap();
        assert_eq!(w.bytes_written(), 10);
        w.close().unwrap();
        assert_eq!(dfs.read_file("/f").unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(dfs.stat("/f").unwrap().num_blocks, 3); // 4+4+2
    }

    #[test]
    fn exact_multiple_of_block_size_has_no_tail() {
        let dfs = cluster();
        let mut w = dfs.create("/f").unwrap();
        w.write_all(&[0u8; 8]).unwrap();
        w.close().unwrap();
        assert_eq!(dfs.stat("/f").unwrap().num_blocks, 2);
    }

    #[test]
    fn drop_without_close_truncates_to_full_blocks() {
        let dfs = cluster();
        {
            let mut w = dfs.create("/f").unwrap();
            w.write_all(&[9u8; 6]).unwrap(); // one full block + 2 buffered
        }
        assert_eq!(dfs.read_file("/f").unwrap(), vec![9u8; 4]);
    }

    #[test]
    fn single_oversized_write_spans_blocks() {
        let dfs = cluster();
        let mut w = dfs.create("/big").unwrap();
        let payload: Vec<u8> = (0..23u8).collect();
        w.write_all(&payload).unwrap();
        w.close().unwrap();
        assert_eq!(dfs.read_file("/big").unwrap(), payload);
    }
}
