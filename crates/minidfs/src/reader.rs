//! Streaming reader across the blocks of a file.

use crate::block::BlockInfo;
use crate::cluster::DfsCluster;
use std::io::{self, Read};
use std::sync::Arc;

/// A `std::io::Read` adapter that walks a file block by block, fetching
/// each from a live replica on demand.
pub struct DfsReader<'a> {
    cluster: &'a DfsCluster,
    path: String,
    blocks: Vec<BlockInfo>,
    next_block: usize,
    current: Option<(Arc<Vec<u8>>, usize)>,
}

impl<'a> DfsReader<'a> {
    pub(crate) fn new(cluster: &'a DfsCluster, path: String, blocks: Vec<BlockInfo>) -> Self {
        DfsReader { cluster, path, blocks, next_block: 0, current: None }
    }

    /// Total file length in bytes.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.len).sum()
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn ensure_block(&mut self) -> io::Result<bool> {
        loop {
            if let Some((ref data, pos)) = self.current {
                if pos < data.len() {
                    return Ok(true);
                }
                self.current = None;
            }
            if self.next_block >= self.blocks.len() {
                return Ok(false);
            }
            let info = self.blocks[self.next_block].clone();
            self.next_block += 1;
            let data = self.cluster.read_block(&self.path, &info).map_err(io::Error::from)?;
            self.current = Some((data, 0));
        }
    }
}

impl Read for DfsReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() || !self.ensure_block()? {
            return Ok(0);
        }
        let (data, pos) = self.current.as_mut().expect("ensure_block guaranteed a block");
        let take = buf.len().min(data.len() - *pos);
        buf[..take].copy_from_slice(&data[*pos..*pos + take]);
        *pos += take;
        Ok(take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{DfsCluster, DfsConfig};
    use std::io::{BufRead, BufReader};

    fn cluster() -> DfsCluster {
        DfsCluster::new(DfsConfig { num_datanodes: 3, replication: 2, block_size: 5 }).unwrap()
    }

    #[test]
    fn streaming_read_matches_bulk() {
        let dfs = cluster();
        let payload: Vec<u8> = (0..37u8).collect();
        dfs.write_file("/f", &payload).unwrap();
        let mut r = dfs.open("/f").unwrap();
        assert_eq!(r.len(), 37);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn small_reads_cross_block_boundaries() {
        let dfs = cluster();
        dfs.write_file("/f", b"hello world, blocks!").unwrap();
        let mut r = dfs.open("/f").unwrap();
        let mut buf = [0u8; 3];
        let mut out = Vec::new();
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        assert_eq!(out, b"hello world, blocks!");
    }

    #[test]
    fn works_with_bufread_lines() {
        let dfs = cluster();
        dfs.write_file("/lines", b"a\nbb\nccc\n").unwrap();
        let r = dfs.open("/lines").unwrap();
        let lines: Vec<String> = BufReader::new(r).lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines, vec!["a", "bb", "ccc"]);
    }

    #[test]
    fn empty_file_reads_zero() {
        let dfs = cluster();
        dfs.write_file("/e", &[]).unwrap();
        let mut r = dfs.open("/e").unwrap();
        assert!(r.is_empty());
        let mut buf = [0u8; 4];
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn zero_length_target_buffer() {
        let dfs = cluster();
        dfs.write_file("/f", b"xy").unwrap();
        let mut r = dfs.open("/f").unwrap();
        assert_eq!(r.read(&mut []).unwrap(), 0);
    }
}
