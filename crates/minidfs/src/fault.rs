//! Deterministic read-fault injection.
//!
//! A [`ReadFaultPlan`] curses `(block, node)` replica pairs for the
//! lifetime of a cluster: a cursed replica behaves as dead on the read
//! path even though its datanode is up, exercising replica fallback,
//! healing re-replication and — when every replica of a block is cursed
//! — the typed [`crate::DfsError::AllReplicasLost`] exhaustion error.
//!
//! Decisions are pure functions of `(seed, block, node)`, so which
//! replicas fail is identical across runs and thread schedules. The
//! per-block budget is applied in replica-list order, which the
//! namenode keeps deterministic.

/// Deterministic replica curse schedule for block reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadFaultPlan {
    /// Seed for the curse decisions.
    pub seed: u64,
    /// Probability that any given `(block, node)` replica is cursed.
    pub prob: f64,
    /// At most this many cursed replicas per block (counted in replica
    /// order), bounding how close a block gets to exhaustion. Setting
    /// this to the replication factor (or more) with `prob = 1.0`
    /// curses every replica.
    pub max_dead_replicas_per_block: usize,
}

impl ReadFaultPlan {
    /// Whether the `(block, node)` replica is cursed, ignoring the
    /// per-block budget (the cluster applies that in replica order).
    pub(crate) fn replica_cursed(&self, block: u64, node: usize) -> bool {
        if self.prob <= 0.0 || self.max_dead_replicas_per_block == 0 {
            return false;
        }
        if self.prob >= 1.0 {
            return true;
        }
        let h = mix(mix(mix(self.seed ^ 0x6466_7372_6561_6466) ^ block) ^ node as u64);
        (h as f64 / u64::MAX as f64) < self.prob
    }
}

/// splitmix64 finalizer (duplicated from sparklet so minidfs stays
/// dependency-free).
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curses_are_deterministic() {
        let p = ReadFaultPlan { seed: 7, prob: 0.5, max_dead_replicas_per_block: 1 };
        for block in 0..64 {
            for node in 0..4 {
                assert_eq!(p.replica_cursed(block, node), p.replica_cursed(block, node));
            }
        }
    }

    #[test]
    fn zero_prob_or_budget_never_curses() {
        let p = ReadFaultPlan { seed: 7, prob: 0.0, max_dead_replicas_per_block: 3 };
        assert!(!p.replica_cursed(1, 1));
        let p = ReadFaultPlan { seed: 7, prob: 1.0, max_dead_replicas_per_block: 0 };
        assert!(!p.replica_cursed(1, 1));
    }

    #[test]
    fn full_prob_curses_everything() {
        let p = ReadFaultPlan { seed: 7, prob: 1.0, max_dead_replicas_per_block: 9 };
        assert!(p.replica_cursed(0, 0) && p.replica_cursed(123, 3));
    }

    #[test]
    fn rate_roughly_matches_prob() {
        let p = ReadFaultPlan { seed: 42, prob: 0.3, max_dead_replicas_per_block: 1 };
        let n = 10_000u64;
        let cursed = (0..n).filter(|&b| p.replica_cursed(b, 0)).count();
        let rate = cursed as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed curse rate {rate}");
    }
}
