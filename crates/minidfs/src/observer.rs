//! Block-level event observation.
//!
//! Compute engines layered on minidfs (sparklet's trace subsystem in
//! particular) want to know *when* blocks are read and when a read had
//! to fall back across replicas — without minidfs depending on any
//! engine crate. This module inverts the dependency: the engine
//! implements [`BlockEventSink`] and installs it with
//! [`crate::DfsCluster::set_event_sink`].

use crate::block::BlockId;

/// Observer of block-level read events. Implementations must be cheap:
/// sinks are invoked on the read path while no cluster locks are held.
pub trait BlockEventSink: Send + Sync {
    /// One block was successfully read (`bytes` = block length).
    fn block_read(&self, block: BlockId, bytes: usize);

    /// A read found `lost` dead replicas and fell back to a survivor
    /// (re-replication is triggered by the cluster afterwards).
    fn replica_fallback(&self, block: BlockId, lost: usize);
}
