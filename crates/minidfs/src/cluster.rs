//! The DFS cluster facade: namenode + datanodes + placement policy.

use crate::block::{BlockId, BlockInfo};
use crate::datanode::{DataNode, NodeId};
use crate::error::{DfsError, DfsResult};
use crate::fault::ReadFaultPlan;
use crate::namenode::{FileStatus, NameNode};
use crate::observer::BlockEventSink;
use crate::reader::DfsReader;
use crate::writer::DfsWriter;
use parking_lot::RwLock;
use std::sync::Arc;

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct DfsConfig {
    /// Number of datanodes.
    pub num_datanodes: usize,
    /// Replication factor per block (clamped to the datanode count).
    pub replication: usize,
    /// Block size in bytes.
    pub block_size: usize,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig { num_datanodes: 4, replication: 3, block_size: 64 * 1024 }
    }
}

/// Aggregate usage statistics, for reports and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfsStats {
    /// Number of files in the namespace.
    pub files: usize,
    /// Replicas stored across all datanodes.
    pub replicas: usize,
    /// Total stored bytes (including replication overhead).
    pub stored_bytes: u64,
    /// Datanodes currently alive.
    pub alive_datanodes: usize,
}

/// An in-process replicated block store.
pub struct DfsCluster {
    namenode: NameNode,
    datanodes: Vec<Arc<DataNode>>,
    config: DfsConfig,
    sink: RwLock<Option<Arc<dyn BlockEventSink>>>,
    read_faults: RwLock<Option<ReadFaultPlan>>,
}

impl DfsCluster {
    /// Spin up a cluster per `config`.
    ///
    /// # Errors
    /// Returns [`DfsError::InvalidConfig`] for zero datanodes, zero
    /// replication, or zero block size.
    pub fn new(config: DfsConfig) -> DfsResult<Self> {
        if config.num_datanodes == 0 {
            return Err(DfsError::InvalidConfig("num_datanodes must be > 0".into()));
        }
        if config.replication == 0 {
            return Err(DfsError::InvalidConfig("replication must be > 0".into()));
        }
        if config.block_size == 0 {
            return Err(DfsError::InvalidConfig("block_size must be > 0".into()));
        }
        let datanodes =
            (0..config.num_datanodes).map(|i| Arc::new(DataNode::new(NodeId(i)))).collect();
        Ok(DfsCluster {
            namenode: NameNode::new(),
            datanodes,
            config,
            sink: RwLock::new(None),
            read_faults: RwLock::new(None),
        })
    }

    /// A small default cluster, convenient for tests and examples.
    pub fn single_node() -> Self {
        DfsCluster::new(DfsConfig { num_datanodes: 1, replication: 1, block_size: 64 * 1024 })
            .expect("static config is valid")
    }

    /// The cluster configuration.
    pub fn config(&self) -> &DfsConfig {
        &self.config
    }

    /// The namenode (for advanced/namespace-level operations).
    pub fn namenode(&self) -> &NameNode {
        &self.namenode
    }

    /// Number of datanodes (alive or dead).
    pub fn num_datanodes(&self) -> usize {
        self.datanodes.len()
    }

    fn node(&self, id: NodeId) -> DfsResult<&Arc<DataNode>> {
        self.datanodes.get(id.0).ok_or(DfsError::UnknownDatanode(id.0))
    }

    /// Choose `replication` alive datanodes for a new block, least-loaded
    /// first (a simplification of HDFS placement).
    fn place_block(&self) -> DfsResult<Vec<NodeId>> {
        let mut alive: Vec<&Arc<DataNode>> =
            self.datanodes.iter().filter(|d| d.is_alive()).collect();
        if alive.is_empty() {
            return Err(DfsError::NoDatanodesAvailable);
        }
        alive.sort_by_key(|d| (d.used_bytes(), d.id().0));
        let k = self.config.replication.min(alive.len());
        Ok(alive[..k].iter().map(|d| d.id()).collect())
    }

    /// Store one complete block for `path`, replicating it.
    pub(crate) fn store_block(&self, path: &str, data: Vec<u8>) -> DfsResult<()> {
        let id = self.namenode.allocate_block();
        let targets = self.place_block()?;
        let len = data.len();
        let shared = Arc::new(data);
        let mut replicas = Vec::with_capacity(targets.len());
        for t in targets {
            if self.node(t)?.put(id, Arc::clone(&shared)) {
                replicas.push(t);
            }
        }
        if replicas.is_empty() {
            return Err(DfsError::NoDatanodesAvailable);
        }
        self.namenode.commit_block(path, BlockInfo { id, len, replicas })
    }

    /// Install (or with `None`, remove) the block-event observer.
    /// Replaces any previous sink.
    pub fn set_event_sink(&self, sink: Option<Arc<dyn BlockEventSink>>) {
        *self.sink.write() = sink;
    }

    /// Install (or with `None`, remove) the deterministic read-fault
    /// plan: cursed replicas behave as dead on the read path.
    pub fn set_read_faults(&self, plan: Option<ReadFaultPlan>) {
        *self.read_faults.write() = plan;
    }

    /// Notify the sink, if one is installed.
    fn notify(&self, f: impl FnOnce(&dyn BlockEventSink)) {
        if let Some(sink) = self.sink.read().as_deref() {
            f(sink);
        }
    }

    /// Read one block, falling back across replicas; on partial replica
    /// loss the block is re-replicated back to the target factor.
    pub fn read_block(&self, path: &str, info: &BlockInfo) -> DfsResult<Arc<Vec<u8>>> {
        let faults = *self.read_faults.read();
        let mut cursed_budget = faults.map(|p| p.max_dead_replicas_per_block).unwrap_or(0);
        let mut data = None;
        let mut live_replicas = Vec::new();
        for &r in &info.replicas {
            // an injected fault makes this replica behave as dead,
            // within the plan's per-block budget (in replica order)
            if cursed_budget > 0 && faults.is_some_and(|p| p.replica_cursed(info.id.0, r.0)) {
                cursed_budget -= 1;
                continue;
            }
            if let Ok(node) = self.node(r) {
                if let Some(d) = node.get(info.id) {
                    live_replicas.push(r);
                    if data.is_none() {
                        data = Some(d);
                    }
                }
            }
        }
        let data = data.ok_or(DfsError::AllReplicasLost(info.id))?;
        self.notify(|s| s.block_read(info.id, data.len()));
        if live_replicas.len() < info.replicas.len() {
            self.notify(|s| s.replica_fallback(info.id, info.replicas.len() - live_replicas.len()));
            // heal: re-replicate onto other alive nodes
            let mut replicas = live_replicas.clone();
            for d in &self.datanodes {
                if replicas.len() >= self.config.replication.min(self.alive_count()) {
                    break;
                }
                if d.is_alive() && !replicas.contains(&d.id()) && d.put(info.id, Arc::clone(&data))
                {
                    replicas.push(d.id());
                }
            }
            self.namenode.update_replicas(path, info.id, replicas)?;
        }
        Ok(data)
    }

    /// Write a whole byte buffer as a new file.
    pub fn write_file(&self, path: &str, bytes: &[u8]) -> DfsResult<()> {
        use std::io::Write;
        let mut w = self.create(path)?;
        w.write_all(bytes).map_err(|_| DfsError::NoDatanodesAvailable)?;
        w.close()
    }

    /// Open a streaming writer for a new file.
    pub fn create(&self, path: &str) -> DfsResult<DfsWriter<'_>> {
        self.namenode.create(path)?;
        Ok(DfsWriter::new(self, path.to_string(), self.config.block_size))
    }

    /// Read a whole file into memory.
    pub fn read_file(&self, path: &str) -> DfsResult<Vec<u8>> {
        let blocks = self.namenode.blocks(path)?;
        let total: usize = blocks.iter().map(|b| b.len).sum();
        let mut out = Vec::with_capacity(total);
        for b in &blocks {
            out.extend_from_slice(&self.read_block(path, b)?);
        }
        Ok(out)
    }

    /// Open a streaming reader.
    pub fn open(&self, path: &str) -> DfsResult<DfsReader<'_>> {
        let blocks = self.namenode.blocks(path)?;
        Ok(DfsReader::new(self, path.to_string(), blocks))
    }

    /// File status.
    pub fn stat(&self, path: &str) -> DfsResult<FileStatus> {
        self.namenode.stat(path)
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.namenode.exists(path)
    }

    /// Delete a file and evict its replicas.
    pub fn delete(&self, path: &str) -> DfsResult<()> {
        for b in self.namenode.delete(path)? {
            for r in b.replicas {
                if let Ok(node) = self.node(r) {
                    node.evict(b.id);
                }
            }
        }
        Ok(())
    }

    /// List files under a prefix.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.namenode.list(prefix)
    }

    /// Locality map of a file: for every block, the nodes hosting it.
    /// Compute engines use this to build local input splits.
    pub fn locality(&self, path: &str) -> DfsResult<Vec<(BlockId, Vec<NodeId>)>> {
        Ok(self.namenode.blocks(path)?.into_iter().map(|b| (b.id, b.replicas)).collect())
    }

    /// Kill a datanode (drops its replicas and stops serving).
    pub fn kill_datanode(&self, id: usize) -> DfsResult<()> {
        self.node(NodeId(id))?.kill();
        Ok(())
    }

    /// Revive a previously killed datanode (empty).
    pub fn revive_datanode(&self, id: usize) -> DfsResult<()> {
        self.node(NodeId(id))?.revive();
        Ok(())
    }

    fn alive_count(&self) -> usize {
        self.datanodes.iter().filter(|d| d.is_alive()).count()
    }

    /// Aggregate usage statistics.
    pub fn stats(&self) -> DfsStats {
        DfsStats {
            files: self.namenode.list("").len(),
            replicas: self.datanodes.iter().map(|d| d.replica_count()).sum(),
            stored_bytes: self.datanodes.iter().map(|d| d.used_bytes()).sum(),
            alive_datanodes: self.alive_count(),
        }
    }

    /// Filesystem check (HDFS `fsck`): classify every block of every
    /// file by replica health, without mutating anything.
    pub fn fsck(&self) -> FsckReport {
        let mut report = FsckReport::default();
        let target = self.config.replication;
        for path in self.namenode.list("") {
            let Ok(blocks) = self.namenode.blocks(&path) else {
                continue;
            };
            for b in blocks {
                report.blocks += 1;
                let live = b
                    .replicas
                    .iter()
                    .filter(|r| {
                        self.node(**r)
                            .map(|n| n.is_alive() && n.get(b.id).is_some())
                            .unwrap_or(false)
                    })
                    .count();
                if live == 0 {
                    report.lost.push((path.clone(), b.id));
                } else if live < target.min(self.datanodes.len()) {
                    report.under_replicated.push((path.clone(), b.id, live));
                } else {
                    report.healthy += 1;
                }
            }
        }
        report
    }

    /// Re-replicate every under-replicated block (what the HDFS
    /// namenode's replication monitor does continuously). Returns the
    /// number of new replicas created.
    pub fn replicate_missing(&self) -> DfsResult<usize> {
        let mut created = 0;
        for path in self.namenode.list("") {
            for b in self.namenode.blocks(&path)? {
                // reading triggers the heal path
                match self.read_block(&path, &b) {
                    Ok(_) => {
                        let after = self
                            .namenode
                            .blocks(&path)?
                            .into_iter()
                            .find(|x| x.id == b.id)
                            .map(|x| x.replicas.len())
                            .unwrap_or(0);
                        created += after.saturating_sub(
                            b.replicas
                                .iter()
                                .filter(|r| {
                                    self.node(**r)
                                        .map(|n| n.is_alive() && n.get(b.id).is_some())
                                        .unwrap_or(false)
                                })
                                .count(),
                        );
                    }
                    Err(DfsError::AllReplicasLost(_)) => {} // reported by fsck
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(created)
    }
}

/// Result of [`DfsCluster::fsck`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FsckReport {
    /// Total blocks inspected.
    pub blocks: usize,
    /// Blocks at full target replication.
    pub healthy: usize,
    /// Blocks below target replication: `(path, block, live replicas)`.
    pub under_replicated: Vec<(String, BlockId, usize)>,
    /// Blocks with zero live replicas (data loss): `(path, block)`.
    pub lost: Vec<(String, BlockId)>,
}

impl FsckReport {
    /// Whether every block is at target replication.
    pub fn is_healthy(&self) -> bool {
        self.under_replicated.is_empty() && self.lost.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> DfsCluster {
        DfsCluster::new(DfsConfig { num_datanodes: 4, replication: 2, block_size: 8 }).unwrap()
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(DfsCluster::new(DfsConfig { num_datanodes: 0, ..Default::default() }).is_err());
        assert!(DfsCluster::new(DfsConfig { replication: 0, ..Default::default() }).is_err());
        assert!(DfsCluster::new(DfsConfig { block_size: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn write_read_roundtrip_multi_block() {
        let dfs = small_cluster();
        let payload: Vec<u8> = (0..100u8).collect(); // 13 blocks of 8 bytes
        dfs.write_file("/f", &payload).unwrap();
        assert_eq!(dfs.read_file("/f").unwrap(), payload);
        let st = dfs.stat("/f").unwrap();
        assert_eq!(st.len, 100);
        assert_eq!(st.num_blocks, 13);
    }

    #[test]
    fn replication_factor_respected() {
        let dfs = small_cluster();
        dfs.write_file("/f", &[0u8; 16]).unwrap();
        for (_, nodes) in dfs.locality("/f").unwrap() {
            assert_eq!(nodes.len(), 2);
        }
        // 2 blocks x 2 replicas
        assert_eq!(dfs.stats().replicas, 4);
    }

    #[test]
    fn empty_file_roundtrip() {
        let dfs = small_cluster();
        dfs.write_file("/empty", &[]).unwrap();
        assert_eq!(dfs.read_file("/empty").unwrap(), Vec::<u8>::new());
        assert_eq!(dfs.stat("/empty").unwrap().num_blocks, 0);
    }

    #[test]
    fn read_survives_single_datanode_failure() {
        let dfs = small_cluster();
        let payload: Vec<u8> = (0..64u8).collect();
        dfs.write_file("/f", &payload).unwrap();
        dfs.kill_datanode(0).unwrap();
        assert_eq!(dfs.read_file("/f").unwrap(), payload);
    }

    #[test]
    fn read_heals_lost_replicas() {
        let dfs = small_cluster();
        dfs.write_file("/f", &[7u8; 8]).unwrap();
        let before = dfs.locality("/f").unwrap()[0].1.clone();
        dfs.kill_datanode(before[0].0).unwrap();
        dfs.read_file("/f").unwrap();
        let after = dfs.locality("/f").unwrap()[0].1.clone();
        assert_eq!(after.len(), 2, "replica healed back to factor 2");
        assert!(!after.contains(&before[0]));
    }

    #[test]
    fn read_fails_when_all_replicas_lost() {
        let dfs =
            DfsCluster::new(DfsConfig { num_datanodes: 2, replication: 2, block_size: 8 }).unwrap();
        dfs.write_file("/f", &[1u8; 8]).unwrap();
        dfs.kill_datanode(0).unwrap();
        dfs.kill_datanode(1).unwrap();
        assert!(matches!(dfs.read_file("/f"), Err(DfsError::AllReplicasLost(_))));
    }

    #[test]
    fn delete_evicts_replicas() {
        let dfs = small_cluster();
        dfs.write_file("/f", &[1u8; 32]).unwrap();
        assert!(dfs.stats().stored_bytes > 0);
        dfs.delete("/f").unwrap();
        assert_eq!(dfs.stats().stored_bytes, 0);
        assert!(!dfs.exists("/f"));
    }

    #[test]
    fn write_with_all_nodes_dead_fails() {
        let dfs = DfsCluster::single_node();
        dfs.kill_datanode(0).unwrap();
        assert!(matches!(dfs.write_file("/f", &[1]), Err(DfsError::NoDatanodesAvailable)));
    }

    #[test]
    fn placement_balances_load() {
        let dfs =
            DfsCluster::new(DfsConfig { num_datanodes: 4, replication: 1, block_size: 4 }).unwrap();
        dfs.write_file("/f", &[0u8; 64]).unwrap(); // 16 blocks, 1 replica each
        let stats: Vec<usize> =
            (0..4).map(|i| dfs.node(NodeId(i)).unwrap().replica_count()).collect();
        assert_eq!(stats.iter().sum::<usize>(), 16);
        // least-loaded placement keeps nodes within one block of each other
        assert!(stats.iter().max().unwrap() - stats.iter().min().unwrap() <= 1, "{stats:?}");
    }

    #[test]
    fn list_and_exists() {
        let dfs = small_cluster();
        dfs.write_file("/a/1", &[1]).unwrap();
        dfs.write_file("/a/2", &[2]).unwrap();
        dfs.write_file("/b/3", &[3]).unwrap();
        assert_eq!(dfs.list("/a/").len(), 2);
        assert!(dfs.exists("/b/3"));
        assert!(!dfs.exists("/b/4"));
    }

    #[test]
    fn event_sink_observes_reads_and_fallbacks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Counting {
            reads: AtomicUsize,
            fallbacks: AtomicUsize,
        }
        impl BlockEventSink for Counting {
            fn block_read(&self, _b: BlockId, _n: usize) {
                self.reads.fetch_add(1, Ordering::Relaxed);
            }
            fn replica_fallback(&self, _b: BlockId, _l: usize) {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        let dfs = small_cluster();
        let sink =
            Arc::new(Counting { reads: AtomicUsize::new(0), fallbacks: AtomicUsize::new(0) });
        dfs.set_event_sink(Some(sink.clone()));
        dfs.write_file("/f", &[1u8; 16]).unwrap(); // 2 blocks of 8
        dfs.read_file("/f").unwrap();
        assert_eq!(sink.reads.load(Ordering::Relaxed), 2);
        assert_eq!(sink.fallbacks.load(Ordering::Relaxed), 0);
        let victim = dfs.locality("/f").unwrap()[0].1[0];
        dfs.kill_datanode(victim.0).unwrap();
        dfs.read_file("/f").unwrap();
        assert!(sink.fallbacks.load(Ordering::Relaxed) >= 1, "dead replica observed");
        let reads_before = sink.reads.load(Ordering::Relaxed);
        dfs.set_event_sink(None);
        dfs.read_file("/f").unwrap();
        assert_eq!(sink.reads.load(Ordering::Relaxed), reads_before, "sink removed");
    }

    #[test]
    fn cursed_replica_read_falls_back_to_survivors() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Fallbacks(AtomicUsize);
        impl BlockEventSink for Fallbacks {
            fn block_read(&self, _b: BlockId, _l: usize) {}
            fn replica_fallback(&self, _b: BlockId, _l: usize) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let dfs = small_cluster(); // replication 2
        let sink = Arc::new(Fallbacks(AtomicUsize::new(0)));
        dfs.set_event_sink(Some(sink.clone()));
        dfs.write_file("/f", &[7u8; 8]).unwrap();
        // curse at most one replica per block: reads must still succeed
        dfs.set_read_faults(Some(ReadFaultPlan {
            seed: 1,
            prob: 1.0,
            max_dead_replicas_per_block: 1,
        }));
        assert_eq!(dfs.read_file("/f").unwrap(), vec![7u8; 8]);
        assert!(sink.0.load(Ordering::Relaxed) >= 1, "cursed replica must be observed");
    }

    #[test]
    fn cursing_every_replica_exhausts_the_block() {
        let dfs = small_cluster(); // replication 2
        dfs.write_file("/f", &[7u8; 8]).unwrap();
        dfs.set_read_faults(Some(ReadFaultPlan {
            seed: 1,
            prob: 1.0,
            max_dead_replicas_per_block: 99,
        }));
        match dfs.read_file("/f") {
            Err(DfsError::AllReplicasLost(_)) => {}
            other => panic!("expected AllReplicasLost, got {other:?}"),
        }
        // removing the plan restores the data (nothing was deleted)
        dfs.set_read_faults(None);
        assert_eq!(dfs.read_file("/f").unwrap(), vec![7u8; 8]);
    }

    #[test]
    fn revive_comes_back_empty_but_usable() {
        let dfs = small_cluster();
        dfs.kill_datanode(1).unwrap();
        dfs.revive_datanode(1).unwrap();
        assert_eq!(dfs.stats().alive_datanodes, 4);
        dfs.write_file("/f", &[1u8; 8]).unwrap();
        assert_eq!(dfs.read_file("/f").unwrap(), vec![1u8; 8]);
    }
}

#[cfg(test)]
mod fsck_tests {
    use super::*;

    fn cluster() -> DfsCluster {
        DfsCluster::new(DfsConfig { num_datanodes: 4, replication: 2, block_size: 8 }).unwrap()
    }

    #[test]
    fn healthy_cluster_reports_healthy() {
        let dfs = cluster();
        dfs.write_file("/a", &[1u8; 24]).unwrap();
        let r = dfs.fsck();
        assert!(r.is_healthy());
        assert_eq!(r.blocks, 3);
        assert_eq!(r.healthy, 3);
    }

    #[test]
    fn dead_datanode_shows_under_replication() {
        let dfs = cluster();
        dfs.write_file("/a", &[1u8; 32]).unwrap();
        dfs.kill_datanode(0).unwrap();
        let r = dfs.fsck();
        assert!(!r.under_replicated.is_empty());
        assert!(r.lost.is_empty(), "factor-2 survives one failure");
    }

    #[test]
    fn replicate_missing_heals_the_cluster() {
        let dfs = cluster();
        dfs.write_file("/a", &[7u8; 40]).unwrap();
        dfs.kill_datanode(1).unwrap();
        assert!(!dfs.fsck().is_healthy());
        let created = dfs.replicate_missing().unwrap();
        assert!(created > 0 || dfs.fsck().is_healthy());
        assert!(dfs.fsck().is_healthy(), "{:?}", dfs.fsck());
    }

    #[test]
    fn total_loss_is_reported_not_hidden() {
        let dfs =
            DfsCluster::new(DfsConfig { num_datanodes: 2, replication: 2, block_size: 8 }).unwrap();
        dfs.write_file("/a", &[1u8; 8]).unwrap();
        dfs.kill_datanode(0).unwrap();
        dfs.kill_datanode(1).unwrap();
        let r = dfs.fsck();
        assert_eq!(r.lost.len(), 1);
        assert!(!r.is_healthy());
        // replicate_missing tolerates lost blocks without erroring
        assert_eq!(dfs.replicate_missing().unwrap(), 0);
    }
}
