//! # minidfs — an in-process HDFS-like block store
//!
//! The paper's pipeline "reads data from the Hadoop Distributed File
//! System (HDFS) and forms Resilient Distributed Datasets". This crate is
//! the storage substrate of the reproduction: a namenode/datanode block
//! store with
//!
//! * fixed-size blocks, configurable replication factor,
//! * block placement across datanodes (round-robin with load awareness),
//! * locality metadata (which nodes host each block of a file) that the
//!   compute engines use to form input splits,
//! * datanode failure injection with transparent fallback to surviving
//!   replicas, and re-replication on demand,
//! * `std::io::Read`/`Write` adapters for streaming access.
//!
//! Everything lives in one process (the whole reproduction simulates a
//! cluster on one machine) but the structure — and the failure modes —
//! mirror HDFS.

pub mod block;
pub mod cluster;
pub mod datanode;
pub mod error;
pub mod fault;
pub mod namenode;
pub mod observer;
pub mod reader;
pub mod writer;

pub use block::{BlockId, BlockInfo};
pub use cluster::{DfsCluster, DfsConfig, DfsStats, FsckReport};
pub use datanode::{DataNode, NodeId};
pub use error::{DfsError, DfsResult};
pub use fault::ReadFaultPlan;
pub use namenode::{FileStatus, NameNode};
pub use observer::BlockEventSink;
pub use reader::DfsReader;
pub use writer::DfsWriter;
