//! Error type for all DFS operations.

use crate::block::BlockId;

/// Result alias used throughout the crate.
pub type DfsResult<T> = Result<T, DfsError>;

/// Everything that can go wrong in the mini-DFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// The path does not exist in the namespace.
    FileNotFound(String),
    /// Create was called on an existing path.
    FileExists(String),
    /// A block id is not known to the namenode.
    UnknownBlock(BlockId),
    /// Every replica of a block is on a dead datanode.
    AllReplicasLost(BlockId),
    /// The cluster has no (alive) datanodes to place a block on.
    NoDatanodesAvailable,
    /// A datanode id is out of range.
    UnknownDatanode(usize),
    /// Invalid configuration (e.g. replication 0 or block size 0).
    InvalidConfig(String),
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::FileNotFound(p) => write!(f, "file not found: {p}"),
            DfsError::FileExists(p) => write!(f, "file already exists: {p}"),
            DfsError::UnknownBlock(b) => write!(f, "unknown block: {b:?}"),
            DfsError::AllReplicasLost(b) => write!(f, "all replicas lost for block {b:?}"),
            DfsError::NoDatanodesAvailable => write!(f, "no alive datanodes available"),
            DfsError::UnknownDatanode(i) => write!(f, "unknown datanode: {i}"),
            DfsError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for DfsError {}

impl From<DfsError> for std::io::Error {
    fn from(e: DfsError) -> Self {
        std::io::Error::other(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DfsError::FileNotFound("/a/b".into());
        assert!(e.to_string().contains("/a/b"));
        let e = DfsError::AllReplicasLost(BlockId(7));
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn converts_to_io_error() {
        let io: std::io::Error = DfsError::NoDatanodesAvailable.into();
        assert_eq!(io.kind(), std::io::ErrorKind::Other);
    }
}
