//! Block identifiers and per-block metadata.

use crate::datanode::NodeId;

/// Globally unique block identifier, allocated by the namenode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

/// Namenode-side record of one block of a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// The block's id.
    pub id: BlockId,
    /// Payload length in bytes (the final block of a file may be short).
    pub len: usize,
    /// Datanodes currently holding a replica.
    pub replicas: Vec<NodeId>,
}

impl BlockInfo {
    /// Whether `node` holds a replica.
    pub fn is_replica(&self, node: NodeId) -> bool {
        self.replicas.contains(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_membership() {
        let b = BlockInfo { id: BlockId(1), len: 10, replicas: vec![NodeId(0), NodeId(2)] };
        assert!(b.is_replica(NodeId(0)));
        assert!(b.is_replica(NodeId(2)));
        assert!(!b.is_replica(NodeId(1)));
    }

    #[test]
    fn block_ids_are_ordered() {
        assert!(BlockId(1) < BlockId(2));
    }
}
