//! The namenode: file-system namespace and block map.

use crate::block::{BlockId, BlockInfo};
use crate::datanode::NodeId;
use crate::error::{DfsError, DfsResult};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Status summary of one file, as reported by [`NameNode::stat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStatus {
    /// Full path.
    pub path: String,
    /// Total length in bytes.
    pub len: usize,
    /// Number of blocks.
    pub num_blocks: usize,
}

#[derive(Debug, Default, Clone)]
struct FileMeta {
    blocks: Vec<BlockInfo>,
}

/// Namespace + block map. Thread-safe; all mutation goes through `&self`.
#[derive(Debug, Default)]
pub struct NameNode {
    files: RwLock<BTreeMap<String, FileMeta>>,
    next_block: AtomicU64,
}

impl NameNode {
    /// Fresh, empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a new globally unique block id.
    pub fn allocate_block(&self) -> BlockId {
        BlockId(self.next_block.fetch_add(1, Ordering::Relaxed))
    }

    /// Create an empty file entry. Fails if the path exists.
    pub fn create(&self, path: &str) -> DfsResult<()> {
        let mut files = self.files.write();
        if files.contains_key(path) {
            return Err(DfsError::FileExists(path.to_string()));
        }
        files.insert(path.to_string(), FileMeta::default());
        Ok(())
    }

    /// Append a completed block record to a file.
    pub fn commit_block(&self, path: &str, info: BlockInfo) -> DfsResult<()> {
        let mut files = self.files.write();
        let meta = files.get_mut(path).ok_or_else(|| DfsError::FileNotFound(path.to_string()))?;
        meta.blocks.push(info);
        Ok(())
    }

    /// The block list of a file.
    pub fn blocks(&self, path: &str) -> DfsResult<Vec<BlockInfo>> {
        let files = self.files.read();
        files
            .get(path)
            .map(|m| m.blocks.clone())
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))
    }

    /// Replace the replica set of a block (after re-replication or
    /// replica loss).
    pub fn update_replicas(
        &self,
        path: &str,
        block: BlockId,
        replicas: Vec<NodeId>,
    ) -> DfsResult<()> {
        let mut files = self.files.write();
        let meta = files.get_mut(path).ok_or_else(|| DfsError::FileNotFound(path.to_string()))?;
        for b in &mut meta.blocks {
            if b.id == block {
                b.replicas = replicas;
                return Ok(());
            }
        }
        Err(DfsError::UnknownBlock(block))
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    /// File status (length, block count).
    pub fn stat(&self, path: &str) -> DfsResult<FileStatus> {
        let files = self.files.read();
        let meta = files.get(path).ok_or_else(|| DfsError::FileNotFound(path.to_string()))?;
        Ok(FileStatus {
            path: path.to_string(),
            len: meta.blocks.iter().map(|b| b.len).sum(),
            num_blocks: meta.blocks.len(),
        })
    }

    /// Remove a file, returning its block list for replica cleanup.
    pub fn delete(&self, path: &str) -> DfsResult<Vec<BlockInfo>> {
        let mut files = self.files.write();
        files.remove(path).map(|m| m.blocks).ok_or_else(|| DfsError::FileNotFound(path.to_string()))
    }

    /// All paths with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files.read().keys().filter(|k| k.starts_with(prefix)).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(id: u64, len: usize) -> BlockInfo {
        BlockInfo { id: BlockId(id), len, replicas: vec![NodeId(0)] }
    }

    #[test]
    fn create_then_stat() {
        let nn = NameNode::new();
        nn.create("/a").unwrap();
        nn.commit_block("/a", info(0, 100)).unwrap();
        nn.commit_block("/a", info(1, 50)).unwrap();
        let st = nn.stat("/a").unwrap();
        assert_eq!(st.len, 150);
        assert_eq!(st.num_blocks, 2);
    }

    #[test]
    fn duplicate_create_fails() {
        let nn = NameNode::new();
        nn.create("/a").unwrap();
        assert_eq!(nn.create("/a"), Err(DfsError::FileExists("/a".into())));
    }

    #[test]
    fn missing_file_errors() {
        let nn = NameNode::new();
        assert!(matches!(nn.stat("/nope"), Err(DfsError::FileNotFound(_))));
        assert!(matches!(nn.blocks("/nope"), Err(DfsError::FileNotFound(_))));
        assert!(matches!(nn.delete("/nope"), Err(DfsError::FileNotFound(_))));
    }

    #[test]
    fn block_ids_are_unique() {
        let nn = NameNode::new();
        let a = nn.allocate_block();
        let b = nn.allocate_block();
        assert_ne!(a, b);
    }

    #[test]
    fn delete_returns_blocks() {
        let nn = NameNode::new();
        nn.create("/a").unwrap();
        nn.commit_block("/a", info(0, 10)).unwrap();
        let blocks = nn.delete("/a").unwrap();
        assert_eq!(blocks.len(), 1);
        assert!(!nn.exists("/a"));
    }

    #[test]
    fn list_filters_by_prefix() {
        let nn = NameNode::new();
        for p in ["/data/a", "/data/b", "/tmp/c"] {
            nn.create(p).unwrap();
        }
        assert_eq!(nn.list("/data/"), vec!["/data/a".to_string(), "/data/b".to_string()]);
        assert_eq!(nn.list(""), vec!["/data/a", "/data/b", "/tmp/c"]);
    }

    #[test]
    fn update_replicas_rewrites_set() {
        let nn = NameNode::new();
        nn.create("/a").unwrap();
        nn.commit_block("/a", info(0, 10)).unwrap();
        nn.update_replicas("/a", BlockId(0), vec![NodeId(1), NodeId(2)]).unwrap();
        assert_eq!(nn.blocks("/a").unwrap()[0].replicas, vec![NodeId(1), NodeId(2)]);
        assert_eq!(
            nn.update_replicas("/a", BlockId(99), vec![]),
            Err(DfsError::UnknownBlock(BlockId(99)))
        );
    }
}
