//! Property tests for the mini-DFS: write/read fidelity under arbitrary
//! payloads, block sizes, chunked writes, and datanode failures.

use minidfs::{DfsCluster, DfsConfig};
use proptest::prelude::*;
use std::io::Write;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_any_payload(payload in prop::collection::vec(any::<u8>(), 0..2000),
                             block_size in 1usize..128,
                             nodes in 1usize..6,
                             repl in 1usize..4) {
        let dfs = DfsCluster::new(DfsConfig { num_datanodes: nodes, replication: repl, block_size }).unwrap();
        dfs.write_file("/p", &payload).unwrap();
        prop_assert_eq!(dfs.read_file("/p").unwrap(), payload);
    }

    #[test]
    fn chunked_writes_equal_bulk_write(payload in prop::collection::vec(any::<u8>(), 1..1500),
                                       chunk in 1usize..97,
                                       block_size in 1usize..64) {
        let dfs = DfsCluster::new(DfsConfig { num_datanodes: 3, replication: 2, block_size }).unwrap();
        let mut w = dfs.create("/c").unwrap();
        for piece in payload.chunks(chunk) {
            w.write_all(piece).unwrap();
        }
        w.close().unwrap();
        prop_assert_eq!(dfs.read_file("/c").unwrap(), payload);
    }

    #[test]
    fn survives_killing_any_single_node(payload in prop::collection::vec(any::<u8>(), 1..800),
                                        victim in 0usize..4) {
        let dfs = DfsCluster::new(DfsConfig { num_datanodes: 4, replication: 2, block_size: 16 }).unwrap();
        dfs.write_file("/s", &payload).unwrap();
        dfs.kill_datanode(victim).unwrap();
        prop_assert_eq!(dfs.read_file("/s").unwrap(), payload.clone());
        // and reads heal the missing replicas so a second failure is survivable
        let second = (victim + 1) % 4;
        dfs.kill_datanode(second).unwrap();
        prop_assert_eq!(dfs.read_file("/s").unwrap(), payload);
    }

    #[test]
    fn stat_len_matches_payload(payload in prop::collection::vec(any::<u8>(), 0..1000),
                                block_size in 1usize..50) {
        let dfs = DfsCluster::new(DfsConfig { num_datanodes: 2, replication: 1, block_size }).unwrap();
        dfs.write_file("/l", &payload).unwrap();
        let st = dfs.stat("/l").unwrap();
        prop_assert_eq!(st.len, payload.len());
        prop_assert_eq!(st.num_blocks, payload.len().div_ceil(block_size));
    }
}
