//! Command-line DBSCAN over CSV data, driven by the paper's partitioned
//! algorithm (or the sequential / MapReduce baselines).
//!
//! ```console
//! $ dbscan-cli --input points.csv --eps 0.5 --min-pts 4
//! $ dbscan-cli --dataset r10k --scale small --partitions 8 --exact
//! $ dbscan-cli --input points.csv --eps 25 --min-pts 5 --algo mapreduce \
//!       --output labels.csv
//! ```
//!
//! The input CSV has one point per line, comma-separated coordinates,
//! no header. The output CSV has `index,label` rows where label is a
//! cluster id or `noise`.

use scalable_dbscan::datagen::{parse_csv_row, StandardDataset};
use scalable_dbscan::dbscan::{Label, MrDbscan};
use scalable_dbscan::prelude::*;
use std::sync::Arc;

struct Options {
    input: Option<String>,
    dataset: Option<StandardDataset>,
    scale_factor: usize,
    eps: Option<f64>,
    min_pts: Option<usize>,
    partitions: usize,
    exact: bool,
    algo: String,
    output: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dbscan-cli (--input <csv> --eps <f> --min-pts <n> | --dataset <c10k|c100k|r10k|r100k|r1m> [--scale <small|medium|paper>])
       [--partitions <n>] [--exact] [--algo spark|sequential|mapreduce] [--output <csv>]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut o = Options {
        input: None,
        dataset: None,
        scale_factor: 64,
        eps: None,
        min_pts: None,
        partitions: 4,
        exact: false,
        algo: "spark".to_string(),
        output: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| args.get(i + 1).unwrap_or_else(|| usage()).clone();
        match args[i].as_str() {
            "--input" => {
                o.input = Some(take(i));
                i += 2;
            }
            "--dataset" => {
                o.dataset = StandardDataset::from_name(&take(i)).or_else(|| usage());
                i += 2;
            }
            "--scale" => {
                o.scale_factor = match take(i).as_str() {
                    "small" => 64,
                    "medium" => 8,
                    "paper" | "full" => 1,
                    _ => usage(),
                };
                i += 2;
            }
            "--eps" => {
                o.eps = take(i).parse().ok().or_else(|| usage());
                i += 2;
            }
            "--min-pts" => {
                o.min_pts = take(i).parse().ok().or_else(|| usage());
                i += 2;
            }
            "--partitions" => {
                o.partitions = take(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--exact" => {
                o.exact = true;
                i += 1;
            }
            "--algo" => {
                o.algo = take(i);
                i += 2;
            }
            "--output" => {
                o.output = Some(take(i));
                i += 2;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    o
}

fn main() {
    let o = parse_args();

    // ---- load or generate data ----
    let (data, params) = match (&o.input, o.dataset) {
        (Some(path), None) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let rows: Vec<Vec<f64>> = text
                .lines()
                .filter(|l| !l.trim().is_empty())
                .map(|l| {
                    parse_csv_row(l).unwrap_or_else(|| {
                        eprintln!("malformed CSV line: {l:?}");
                        std::process::exit(1);
                    })
                })
                .collect();
            if rows.is_empty() {
                eprintln!("no points in {path}");
                std::process::exit(1);
            }
            let (Some(eps), Some(min_pts)) = (o.eps, o.min_pts) else {
                eprintln!("--eps and --min-pts are required with --input");
                usage();
            };
            let params = DbscanParams::new(eps, min_pts).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            (Arc::new(Dataset::from_rows(rows)), params)
        }
        (None, Some(ds)) => {
            let spec = ds.scaled_spec(o.scale_factor);
            let (data, _) = spec.generate();
            let params =
                DbscanParams::new(o.eps.unwrap_or(spec.eps), o.min_pts.unwrap_or(spec.min_pts))
                    .expect("catalog params are valid");
            (Arc::new(data), params)
        }
        _ => usage(),
    };

    eprintln!(
        "clustering {} points (d={}) with eps={} min_pts={} [{} / {} partitions{}]",
        data.len(),
        data.dim(),
        params.eps,
        params.min_pts,
        o.algo,
        o.partitions,
        if o.exact { ", exact mode" } else { "" }
    );

    // ---- run ----
    let start = std::time::Instant::now();
    let clustering = match o.algo.as_str() {
        "sequential" => SequentialDbscan::new(params).run(Arc::clone(&data)),
        "mapreduce" => {
            let mut alg = MrDbscan::new(params, o.partitions);
            if o.exact {
                alg = alg.exact();
            }
            alg.run(Arc::clone(&data), o.partitions)
                .unwrap_or_else(|e| {
                    eprintln!("mapreduce job failed: {e}");
                    std::process::exit(1);
                })
                .clustering
        }
        "spark" => {
            let ctx = Context::new(ClusterConfig::local(o.partitions));
            let mut alg = SparkDbscan::new(params).partitions(o.partitions);
            if o.exact {
                alg = alg.exact();
            }
            let result = alg.run(&ctx, Arc::clone(&data));
            eprintln!(
                "partial clusters: {}  merges: {}  shuffle records: {}",
                result.num_partial_clusters, result.merge_ops, result.shuffle_records
            );
            result.clustering
        }
        other => {
            eprintln!("unknown --algo {other}");
            usage();
        }
    };
    let elapsed = start.elapsed();

    // ---- report ----
    println!("clusters: {}", clustering.num_clusters());
    println!("noise:    {}", clustering.noise_count());
    println!("core:     {}", clustering.core_count());
    println!("time:     {elapsed:?}");
    let sizes = clustering.cluster_sizes();
    let mut shown: Vec<_> = sizes.iter().collect();
    shown.sort_by_key(|(_, &s)| std::cmp::Reverse(s));
    for (id, size) in shown.iter().take(10) {
        println!("  cluster {id}: {size} points");
    }
    if sizes.len() > 10 {
        println!("  ... and {} more clusters", sizes.len() - 10);
    }

    if let Some(out) = o.output {
        let mut text = String::with_capacity(clustering.len() * 8);
        for (i, l) in clustering.labels.iter().enumerate() {
            match l {
                Label::Cluster(c) => text.push_str(&format!("{i},{c}\n")),
                Label::Noise => text.push_str(&format!("{i},noise\n")),
            }
        }
        std::fs::write(&out, text).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("labels written to {out}");
    }
}
