//! # scalable-dbscan
//!
//! A from-scratch Rust reproduction of *"A Novel Scalable DBSCAN Algorithm
//! with Spark"* (Han, Agrawal, Liao, Choudhary — IPDPSW 2016).
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`spatial`] — datasets, kd-tree (with the paper's "pruning branches"
//!   mode), brute-force and grid indexes.
//! * [`dfs`] — `minidfs`, an in-process HDFS-like replicated block store.
//! * [`engine`] — `sparklet`, a Spark-like engine: lazy typed RDDs, DAG
//!   scheduling, broadcast variables, accumulators, task retry and a
//!   virtual-cluster time model.
//! * [`mr`] — `mapred`, a Hadoop-MapReduce-like engine with real on-disk
//!   intermediate spills (the paper's baseline substrate).
//! * [`datagen`] — synthetic-cluster generators and the Table I dataset
//!   catalog (c10k, c100k, r10k, r100k, r1m).
//! * [`dbscan`] — the clustering algorithms: sequential DBSCAN, the
//!   paper's SEED-based Spark DBSCAN, and the MapReduce baseline.
//!
//! ## Quickstart
//!
//! ```
//! use scalable_dbscan::prelude::*;
//! use std::sync::Arc;
//!
//! // two blobs and one outlier
//! let mut rows = Vec::new();
//! for i in 0..20 {
//!     rows.push(vec![0.0 + 0.01 * i as f64, 0.0]);
//!     rows.push(vec![10.0 + 0.01 * i as f64, 10.0]);
//! }
//! rows.push(vec![100.0, 100.0]);
//! let data = Arc::new(Dataset::from_rows(rows));
//!
//! let params = DbscanParams::new(0.5, 3).unwrap();
//! let ctx = Context::new(ClusterConfig::local(4));
//! let result = SparkDbscan::new(params).run(&ctx, data.clone());
//! assert_eq!(result.clustering.num_clusters(), 2);
//! assert_eq!(result.clustering.noise_count(), 1);
//! ```

pub use dbscan_core as dbscan;
pub use dbscan_datagen as datagen;
pub use dbscan_spatial as spatial;
pub use mapred as mr;
pub use minidfs as dfs;
pub use sparklet as engine;

/// The most common imports for applications.
pub mod prelude {
    pub use dbscan_core::{
        clustering_fingerprint, Balance, Clustering, DbscanExploreJob, DbscanParams, DbscanRunner,
        Label, MergeStrategy, MrDbscan, ParamError, Resources, RunEnv, RunOutcome, RunTimings,
        RunnerError, SeedPolicy, SequentialDbscan, SparkDbscan,
    };
    pub use dbscan_datagen::{DatasetSpec, StandardDataset};
    pub use dbscan_spatial::{
        BuildConfig, Dataset, KdTree, KernelConfig, KernelLayout, PointId, SpatialIndex,
    };
    pub use sparklet::{
        ClusterConfig, Context, ExploreJob, ExploreReport, Explorer, MemoryBudget, MemoryStats,
        Replay, ReplayToken, SchedulePolicy, Seeded, SparkError, SpeculationConfig, SpillError,
        TraceConfig, TraceHandle,
    };
}
