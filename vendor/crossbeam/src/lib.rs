//! Offline stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::channel` subset the workspace uses
//! (`unbounded`, `Sender`, `Receiver` — both halves clonable), backed by
//! a `Mutex<VecDeque>` + `Condvar` multi-producer multi-consumer queue.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of an unbounded channel (clonable).
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of an unbounded channel (clonable).
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // last sender gone: wake blocked receivers so they observe
                // the disconnect
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Error returned when every receiver has disconnected.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned when the channel is empty and every sender has
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with no message queued.
        Timeout,
        /// The channel is empty and every sender has disconnected.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl<T> Sender<T> {
        /// Enqueue a message, failing only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Non-blocking receive of an already-queued message.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.pop_front().ok_or(RecvError)
        }

        /// Block until a message arrives, every sender is gone, or
        /// `timeout` elapses — whichever happens first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) =
                    self.0.ready.wait_timeout(q, left).unwrap_or_else(|p| p.into_inner());
                // loop re-checks the queue: a spurious or timed-out wake
                // may still race with a send that already enqueued
                q = guard;
            }
        }
    }

    /// Create an unbounded MPMC FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(42).unwrap());
            assert_eq!(rx.recv().unwrap(), 42);
            drop(tx);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn multiple_receivers_split_the_stream() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let mut seen = Vec::new();
            for _ in 0..5 {
                seen.push(rx1.recv().unwrap());
                seen.push(rx2.recv().unwrap());
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            let t0 = std::time::Instant::now();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn blocked_recv_wakes_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            assert!(h.join().unwrap().is_err());
        }
    }
}
