//! Offline stand-in for `parking_lot`.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `parking_lot` cannot be fetched. This shim wraps `std::sync`
//! primitives behind the `parking_lot` API the workspace uses:
//! `Mutex::lock`, `RwLock::read`, `RwLock::write` — all infallible
//! (poisoning is translated into a panic, which is what every call site
//! here would do with `.unwrap()` anyway).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with `parking_lot`'s infallible `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s infallible `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
