//! Offline stand-in for `rand` 0.9.
//!
//! Implements the subset of the `rand` API this workspace uses —
//! [`Rng::random`], [`Rng::random_range`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`] — on top of a
//! splitmix64 generator. Deterministic for a given seed, statistically
//! good enough for the synthetic data generators and tests here; not a
//! cryptographic or research-grade source of randomness.

/// Types a generator can produce uniformly over their full domain
/// (or `[0, 1)` for floats, matching `rand`'s `StandardUniform`).
pub trait RandomValue: Sized {
    /// Draw one value from `rng`.
    fn random_from(rng: &mut dyn RngCore) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_random {
    ($($t:ty),*) => {$(
        impl RandomValue for $t {
            fn random_from(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_random!(u8, u16, u32, u64, usize, i32, i64);

impl RandomValue for f64 {
    fn random_from(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandomValue for f32 {
    fn random_from(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl RandomValue for bool {
    fn random_from(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::random_from(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + f32::random_from(rng) * (self.end - self.start)
    }
}

/// The user-facing generator methods (`rand`'s `Rng`).
pub trait Rng: RngCore {
    /// A uniform value over `T`'s standard domain.
    fn random<T: RandomValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// A uniform value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction (`rand`'s `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Slice and iterator helpers.

    use super::{Rng, RngCore};

    /// Fisher–Yates shuffling (`rand`'s `SliceRandom::shuffle`).
    pub trait SliceRandom {
        /// Shuffle the slice in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3.0..7.0);
            assert!((3.0..7.0).contains(&v));
            let i = rng.random_range(5usize..9);
            assert!((5..9).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
