//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the real `serde`
//! cannot be fetched. This shim keeps the workspace's serde-facing code
//! compiling and behaving: `#[derive(Serialize, Deserialize)]` works (via
//! the sibling `serde_derive` stub), and `serde_json` round-trips every
//! type the workspace serializes.
//!
//! Instead of serde's visitor-based data model, everything funnels
//! through one dynamic [`Value`] tree — drastically simpler, and fully
//! adequate for the JSON-lines spill files, result reports, and test
//! round-trips this repo performs. Representations match serde's JSON
//! defaults: named structs are objects, newtypes are transparent, tuples
//! are arrays, unit enum variants are strings, and data-carrying
//! variants are externally tagged one-entry objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A dynamically typed serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// JSON numbers without a fractional part (covers u64 and i64).
    Int(i128),
    /// JSON numbers with a fractional part or exponent.
    Float(f64),
    /// JSON strings.
    String(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object value.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::new(format!("missing field `{name}`"))),
            other => Err(Error::new(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Look up an element of an array value.
    pub fn index(&self, i: usize) -> Result<&Value, Error> {
        match self {
            Value::Array(items) => {
                items.get(i).ok_or_else(|| Error::new(format!("missing array element {i}")))
            }
            other => Err(Error::new(format!("expected array, found {}", other.kind()))),
        }
    }

    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

macro_rules! impl_value_from {
    ($($t:ty => $variant:ident ($conv:expr)),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::$variant($conv(v))
            }
        }
    )*};
}

impl_value_from! {
    bool => Bool(|v| v),
    u8 => Int(|v| v as i128), u16 => Int(|v| v as i128), u32 => Int(|v| v as i128),
    u64 => Int(|v| v as i128), usize => Int(|v| v as i128),
    i8 => Int(|v| v as i128), i16 => Int(|v| v as i128), i32 => Int(|v| v as i128),
    i64 => Int(|v| v as i128), isize => Int(|v| v as i128),
    f32 => Float(|v| v as f64), f64 => Float(|v| v),
    String => String(|v| v),
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error carrying `message`.
    pub fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.message)
    }
}

/// Types that can be converted to a [`Value`].
pub trait Serialize {
    /// The serialized form.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from a serialized form.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    //! Deserialization helper traits (`serde::de` compatibility).

    /// Owned deserialization — in this shim every [`crate::Deserialize`]
    /// type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ------------------------------------------------------------------
// impls for std types

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::new(format!("integer {i} out of range for {}", stringify!($t)))),
                    other => Err(Error::new(format!("expected integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128, isize);

// u128 saturates at the data model's i128 range (far beyond any value
// this workspace serializes — Duration::as_millis and the like)
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::Int(i128::try_from(*self).unwrap_or(i128::MAX))
    }
}
impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Int(i) => u128::try_from(*i)
                .map_err(|_| Error::new(format!("integer {i} out of range for u128"))),
            other => Err(Error::new(format!("expected integer, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::new(format!("expected number, found {}", other.kind()))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($name::from_value(v.index($idx)?)?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // sort for deterministic output
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(keys.into_iter().map(|k| (k.clone(), self[k].to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => {
                fields.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(Error::new(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => {
                fields.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(Error::new(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::Int(self.as_secs() as i128)),
            ("nanos".to_string(), Value::Int(self.subsec_nanos() as i128)),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(v.field("secs")?)?;
        let nanos = u32::from_value(v.field("nanos")?)?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let t = ("k".to_string(), 9u64);
        assert_eq!(<(String, u64)>::from_value(&t.to_value()).unwrap(), t);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn out_of_range_integer_errors() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn duration_roundtrips() {
        let d = std::time::Duration::new(3, 141_592_653);
        assert_eq!(std::time::Duration::from_value(&d.to_value()).unwrap(), d);
    }
}
