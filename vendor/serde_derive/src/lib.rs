//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the Value-based `serde` shim, parsing the item's token stream by hand
//! (the real `syn`/`quote` stack is unavailable offline). Supports what
//! the workspace actually derives on: non-generic named structs, tuple
//! structs, unit structs, and enums with unit or tuple variants.
//! Representations match serde's JSON defaults (objects / transparent
//! newtypes / arrays / externally tagged variants).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<(String, usize)> },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive stub generated invalid code: {e}\");")
            .parse()
            .unwrap()
    })
}

// ------------------------------------------------------------------
// parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // skip attributes and visibility before `struct` / `enum`
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break;
            }
            Some(_) => i += 1,
            None => return Err("expected `struct` or `enum`".to_string()),
        }
    }
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        _ => unreachable!(),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".to_string()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("serde_derive stub cannot handle generic type `{name}`"));
        }
    }
    if keyword == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct { name, fields: parse_named_fields(g.stream())? })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            _ => Err(format!("unsupported struct body for `{name}`")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum { name, variants: parse_variants(g.stream())? })
            }
            _ => Err(format!("expected enum body for `{name}`")),
        }
    }
}

/// Field names of a named struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // skip attributes
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        // skip visibility
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        // skip the type: consume until a comma at angle-bracket depth 0
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Number of fields in a tuple-struct or tuple-variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                saw_tokens_since_comma = false;
                fields += 1;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        fields -= 1; // trailing comma
    }
    fields
}

/// `(variant_name, arity)` pairs of an enum body (arity 0 = unit).
fn parse_variants(body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let mut arity = 0;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = count_tuple_fields(g.stream());
                    i += 1;
                }
                Delimiter::Brace => {
                    return Err(format!("serde_derive stub cannot handle struct variant `{name}`"));
                }
                _ => {}
            }
        }
        variants.push((name, arity));
        // skip any discriminant, stop after the separating comma
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    Ok(variants)
}

// ------------------------------------------------------------------
// code generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push((::std::string::String::from({f:?}), \
                     ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                       ::std::vec::Vec::new();\n\
                     {pushes}\
                     ::serde::Value::Object(fields)\n\
                   }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } if *arity == 1 => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Serialize::to_value(&self.0)\n\
               }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> =
                (0..*arity).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Array(::std::vec![{}])\n\
                   }}\n\
                 }}",
                items.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
               fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, arity) in variants {
                match arity {
                    0 => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\
                         ::std::string::String::from({vname:?})),\n"
                    )),
                    1 => arms.push_str(&format!(
                        "{name}::{vname}(a0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from({vname:?}), \
                         ::serde::Serialize::to_value(a0))]),\n"
                    )),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("a{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Value::Array(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n\
                     match self {{\n{arms}}}\n\
                   }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field({f:?})?)?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name} {{ {} }})\n\
                   }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } if *arity == 1 => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
               }}\n\
             }}"
        ),
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(v.index({i})?)?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}({}))\n\
                   }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
               fn from_value(_v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name})\n\
               }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (vname, arity) in variants {
                match arity {
                    0 => unit_arms.push_str(&format!(
                        "{vname:?} => return ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    1 => data_arms.push_str(&format!(
                        "{vname:?} => return ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    n => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_value(inner.index({i})?)?")
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "{vname:?} => return ::std::result::Result::Ok({name}::{vname}({})),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_value(v: &::serde::Value) -> \
                     ::std::result::Result<Self, ::serde::Error> {{\n\
                     if let ::serde::Value::String(s) = v {{\n\
                       match s.as_str() {{ {unit_arms} _ => {{}} }}\n\
                     }}\n\
                     if let ::serde::Value::Object(fields) = v {{\n\
                       if fields.len() == 1 {{\n\
                         let (tag, inner) = &fields[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{ {data_arms} _ => {{}} }}\n\
                       }}\n\
                     }}\n\
                     ::std::result::Result::Err(::serde::Error::new(\
                       ::std::format!(\"invalid {name} variant: {{:?}}\", v)))\n\
                   }}\n\
                 }}"
            )
        }
    }
}
