//! Offline stand-in for `serde_json`.
//!
//! A complete (if small) JSON serializer and parser over the shim
//! `serde`'s [`Value`] data model. Strings are fully escaped, `f64`s are
//! rendered with Rust's shortest-roundtrip formatting (so numeric
//! round-trips are exact), and integers keep 64-bit precision by
//! traveling through `i128` internally.

pub use serde::{Error, Value};

use serde::{de::DeserializeOwned, Serialize};
use std::fmt::Write as _;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialize `value` to a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Serialize `value` to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Deserialize a `T` from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

/// Build a [`Value`] from JSON-like syntax (object/array/literal subset).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {{
        let fields: Vec<(String, $crate::Value)> =
            vec![ $( ($key.to_string(), $crate::json!($val)) ),* ];
        $crate::Value::Object(fields)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

// ------------------------------------------------------------------
// rendering

fn render(v: &Value, out: &mut String, indent: Option<usize>, level: usize) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent non-finite floats"));
            }
            // {:?} is Rust's shortest roundtrip form; it always includes
            // a '.' or exponent, so parsing restores Float (not Int)
            let _ = write!(out, "{f:?}");
        }
        Value::String(s) => render_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                render(item, out, indent, level + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, level + 1)?;
            }
            if !fields.is_empty() {
                newline_indent(out, indent, level);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------
// parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|e| Error::new(e.to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| Error::new(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|e| Error::new(e.to_string()))
        } else {
            text.parse::<i128>().map(Value::Int).map_err(|e| Error::new(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn float_shortest_roundtrip_is_exact() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-10] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 2.0);
    }

    #[test]
    fn string_escaping_roundtrips() {
        let nasty = "a\"b\\c\nd\te\u{0001}f/😀";
        let s = to_string(&nasty.to_string()).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), nasty);
    }

    #[test]
    fn tuples_and_vecs_roundtrip() {
        let pair = ("word".to_string(), 3u64);
        let s = to_string(&pair).unwrap();
        assert_eq!(from_str::<(String, u64)>(&s).unwrap(), pair);
        let v = vec![vec![1u32], vec![], vec![2, 3]];
        assert_eq!(from_str::<Vec<Vec<u32>>>(&to_string(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn u64_precision_is_preserved() {
        let big = u64::MAX - 1;
        assert_eq!(from_str::<u64>(&to_string(&big).unwrap()).unwrap(), big);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"k": 1, "s": "x", "nested": {"a": [1, 2, true, null]}});
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"k":1,"s":"x","nested":{"a":[1,2,true,null]}}"#);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"a": [1, 2], "b": {"c": 3.5}});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<u32>("{").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
