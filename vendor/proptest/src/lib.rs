//! Offline stand-in for `proptest`.
//!
//! Runs each `proptest!` test over `cases` deterministic pseudo-random
//! inputs. Supports the strategy combinators this workspace uses: range
//! strategies over ints and floats, `prop::collection::vec`, `any::<T>()`,
//! tuples of strategies, `prop_map`/`prop_flat_map`, and the
//! `prop_assert*` macros. No shrinking: a failing case panics immediately
//! with the case's seed so it can be reproduced (the generator is
//! deterministic per test name + case index).

use std::ops::{Range, RangeInclusive};

/// Deterministic generator used to produce test cases (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, bound).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty sampling bound");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Test-loop configuration (`proptest`'s `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure type carried by `prop_assert!` (kept for API compatibility —
/// in this shim assertions panic directly).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generate a value, then use it to pick a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObj<T>>);

trait StrategyObj<T> {
    fn sample_obj(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn sample_obj(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_obj(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical whole-domain strategy (`proptest`'s
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // finite, sign-symmetric, spanning several orders of magnitude
        (rng.unit_f64() - 0.5) * 2e6
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec` — a vector whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below(self.size.hi - self.size.lo + 1)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Run `cases` deterministic cases of `body` (used by `proptest!`).
pub fn run_cases(config: ProptestConfig, test_name: &str, mut body: impl FnMut(&mut TestRng)) {
    // stable per-test seed so failures reproduce across runs
    let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        name_hash ^= b as u64;
        name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..config.cases {
        let seed = name_hash ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = result {
            eprintln!(
                "proptest stub: test `{test_name}` failed at case {case}/{} (seed {seed:#x})",
                config.cases
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Assert a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(config, stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                    $body
                });
            }
        )*
    };
    ($($tt:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($tt)*
        }
    };
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let f = Strategy::sample(&(2.0f64..3.0), &mut rng);
            assert!((2.0..3.0).contains(&f));
            let u = Strategy::sample(&(5usize..8), &mut rng);
            assert!((5..8).contains(&u));
            let i = Strategy::sample(&(4u32..=4), &mut rng);
            assert_eq!(i, 4);
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::new(2);
        let strat = prop::collection::vec(any::<u8>(), 3..6);
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((3..6).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::new(3);
        let strat = (0usize..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            assert_eq!(Strategy::sample(&strat, &mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(a in 0usize..10, b in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((0.0..1.0).contains(&b));
        }
    }
}
