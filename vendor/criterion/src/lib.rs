//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-definition API the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `sample_size`, `Bencher::iter`,
//! `BenchmarkId`) with a simple wall-clock measurement loop: per sample,
//! the closure runs once; the harness reports min/mean/max over the
//! group's sample count to stdout. No statistics engine, no HTML
//! reports — enough to compare implementations and to keep
//! `cargo bench` working offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Option<Stats>,
}

/// Min/mean/max of the measured samples.
#[derive(Debug, Clone, Copy)]
struct Stats {
    min: Duration,
    mean: Duration,
    max: Duration,
}

impl Bencher {
    /// Measure `f`, one invocation per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, untimed
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            let dt = start.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        self.results = Some(Stats { min, mean: total / self.samples as u32, max });
    }
}

/// The top-level benchmark harness.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_samples: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.default_samples;
        BenchmarkGroup { _parent: self, name: name.into(), samples }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let samples = self.default_samples;
        run_one("", &id.into(), samples, f);
    }

    /// Criterion 0.7 API shim: final summary output (no-op here).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_one(&self.name, &id.into(), self.samples, f);
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        run_one(&self.name, &id.into(), self.samples, |b| f(b, input));
    }

    /// Close the group (printing happens per-benchmark; no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, samples: usize, mut f: F) {
    let mut b = Bencher { samples, results: None };
    f(&mut b);
    let label = if group.is_empty() { id.0.clone() } else { format!("{group}/{}", id.0) };
    match b.results {
        Some(s) => println!(
            "bench {label:<55} mean {:>12?}  (min {:?}, max {:?}, {} samples)",
            s.mean, s.min, s.max, samples
        ),
        None => println!("bench {label:<55} (no measurement taken)"),
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| b.iter(|| n * 2));
        g.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
