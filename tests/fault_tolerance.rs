//! Fault-tolerance integration: the framework-level resilience the
//! paper contrasts with MPI ("one failed process causes the whole job
//! to fail") must hold across the whole stack.

use scalable_dbscan::datagen::StandardDataset;
use scalable_dbscan::dbscan::MrDbscan;
use scalable_dbscan::engine::FaultConfig;
use scalable_dbscan::prelude::*;
use std::sync::Arc;

fn data_and_params() -> (Arc<Dataset>, DbscanParams) {
    let spec = StandardDataset::C10k.scaled_spec(32);
    let (data, _) = spec.generate();
    (Arc::new(data), DbscanParams::new(spec.eps, spec.min_pts).unwrap())
}

#[test]
fn task_failures_do_not_change_the_clustering() {
    let (data, params) = data_and_params();
    let clean_ctx = Context::new(ClusterConfig::local(4));
    let clean = SparkDbscan::new(params).run(&clean_ctx, Arc::clone(&data));

    for prob in [0.3, 1.0] {
        let cfg = ClusterConfig::local(4)
            .with_fault(FaultConfig { task_failure_prob: prob, max_injected_failures_per_task: 2 })
            .with_max_attempts(5);
        let ctx = Context::new(cfg);
        let faulty = SparkDbscan::new(params).run(&ctx, Arc::clone(&data));
        assert_eq!(
            faulty.clustering.canonicalize().labels,
            clean.clustering.canonicalize().labels,
            "prob={prob}"
        );
        assert_eq!(
            faulty.num_partial_clusters, clean.num_partial_clusters,
            "accumulator stays exactly-once under retries (prob={prob})"
        );
    }
}

#[test]
fn executor_loss_between_jobs_is_recovered_from_lineage() {
    let (data, params) = data_and_params();
    let ctx = Context::new(ClusterConfig::local(4));
    let first = SparkDbscan::new(params).run(&ctx, Arc::clone(&data));
    // lose an executor (drops its cached partitions + shuffle outputs)
    ctx.kill_executor(1);
    let second = SparkDbscan::new(params).run(&ctx, Arc::clone(&data));
    assert_eq!(first.clustering.canonicalize().labels, second.clustering.canonicalize().labels);
}

#[test]
fn mapreduce_retries_map_and_reduce_tasks() {
    let (data, params) = data_and_params();
    let clean = MrDbscan::new(params, 3).run(Arc::clone(&data), 2).unwrap();

    // exercise injected failures at the engine level: a job where every
    // task's first attempt fails must still produce the clean answer
    use scalable_dbscan::mr::{Counters, Emitter, JobConfig, MapReduceJob, Mapper, Reducer};
    struct Double;
    impl Mapper for Double {
        type In = u32;
        type KOut = u32;
        type VOut = u32;
        fn map(&self, x: u32, emit: &mut Emitter<u32, u32>, _c: &Counters) {
            emit.emit(x % 10, x);
        }
    }
    struct Count;
    impl Reducer for Count {
        type KIn = u32;
        type VIn = u32;
        type Out = (u32, usize);
        fn reduce(&self, k: u32, vs: Vec<u32>, out: &mut Vec<(u32, usize)>, _c: &Counters) {
            out.push((k, vs.len()));
        }
    }
    let splits: Vec<Vec<u32>> = (0..4).map(|s| (s * 25..(s + 1) * 25).collect()).collect();
    let clean_job =
        MapReduceJob::new(Double, Count, JobConfig::with_slots(2)).run(splits.clone()).unwrap();
    let faulty_job = MapReduceJob::new(Double, Count, JobConfig::with_slots(2).with_faults(1.0, 1))
        .run(splits)
        .unwrap();
    let sort = |mut v: Vec<(u32, usize)>| {
        v.sort_unstable();
        v
    };
    assert_eq!(sort(clean_job.outputs), sort(faulty_job.outputs));
    assert!(faulty_job.metrics.map_retries >= 2);
    assert!(faulty_job.metrics.reduce_retries >= 1);

    // and the DBSCAN-level MR result is stable run to run
    let again = MrDbscan::new(params, 3).run(Arc::clone(&data), 2).unwrap();
    assert_eq!(clean.clustering.canonicalize().labels, again.clustering.canonicalize().labels);
}

#[test]
fn datanode_loss_does_not_lose_input_data() {
    use scalable_dbscan::datagen;
    use scalable_dbscan::dfs::{DfsCluster, DfsConfig};
    let (data, _) = data_and_params();
    let dfs = Arc::new(
        DfsCluster::new(DfsConfig { num_datanodes: 4, replication: 2, block_size: 4096 }).unwrap(),
    );
    datagen::write_dataset_to_dfs(&dfs, "/d.csv", &data).unwrap();
    dfs.kill_datanode(2).unwrap();
    let back = datagen::read_dataset_from_dfs(&dfs, "/d.csv").unwrap();
    assert_eq!(back, *data);
    // the read healed replication; another failure is survivable too
    dfs.kill_datanode(3).unwrap();
    let back2 = datagen::read_dataset_from_dfs(&dfs, "/d.csv").unwrap();
    assert_eq!(back2, *data);
}
