//! Fault-tolerance integration: the framework-level resilience the
//! paper contrasts with MPI ("one failed process causes the whole job
//! to fail") must hold across the whole stack.

use scalable_dbscan::datagen::StandardDataset;
use scalable_dbscan::dbscan::{MrDbscan, ShuffleDbscan};
use scalable_dbscan::engine::{FaultConfig, FaultPlan, FaultRule, SparkError};
use scalable_dbscan::prelude::*;
use std::sync::Arc;

fn data_and_params() -> (Arc<Dataset>, DbscanParams) {
    let spec = StandardDataset::C10k.scaled_spec(32);
    let (data, _) = spec.generate();
    (Arc::new(data), DbscanParams::new(spec.eps, spec.min_pts).unwrap())
}

#[test]
fn task_failures_do_not_change_the_clustering() {
    let (data, params) = data_and_params();
    let clean_ctx = Context::new(ClusterConfig::local(4));
    let clean = SparkDbscan::new(params).run(&clean_ctx, Arc::clone(&data));

    for prob in [0.3, 1.0] {
        let cfg = ClusterConfig::local(4)
            .with_fault(FaultConfig { task_failure_prob: prob, max_injected_failures_per_task: 2 })
            .with_max_attempts(5);
        let ctx = Context::new(cfg);
        let faulty = SparkDbscan::new(params).run(&ctx, Arc::clone(&data));
        assert_eq!(
            faulty.clustering.canonicalize().labels,
            clean.clustering.canonicalize().labels,
            "prob={prob}"
        );
        assert_eq!(
            faulty.num_partial_clusters, clean.num_partial_clusters,
            "accumulator stays exactly-once under retries (prob={prob})"
        );
    }
}

#[test]
fn executor_loss_between_jobs_is_recovered_from_lineage() {
    let (data, params) = data_and_params();
    let ctx = Context::new(ClusterConfig::local(4));
    let first = SparkDbscan::new(params).run(&ctx, Arc::clone(&data));
    // lose an executor (drops its cached partitions + shuffle outputs)
    ctx.kill_executor(1);
    let second = SparkDbscan::new(params).run(&ctx, Arc::clone(&data));
    assert_eq!(first.clustering.canonicalize().labels, second.clustering.canonicalize().labels);
}

#[test]
fn mapreduce_retries_map_and_reduce_tasks() {
    let (data, params) = data_and_params();
    let clean = MrDbscan::new(params, 3).run(Arc::clone(&data), 2).unwrap();

    // exercise injected failures at the engine level: a job where every
    // task's first attempt fails must still produce the clean answer
    use scalable_dbscan::mr::{Counters, Emitter, JobConfig, MapReduceJob, Mapper, Reducer};
    struct Double;
    impl Mapper for Double {
        type In = u32;
        type KOut = u32;
        type VOut = u32;
        fn map(&self, x: u32, emit: &mut Emitter<u32, u32>, _c: &Counters) {
            emit.emit(x % 10, x);
        }
    }
    struct Count;
    impl Reducer for Count {
        type KIn = u32;
        type VIn = u32;
        type Out = (u32, usize);
        fn reduce(&self, k: u32, vs: Vec<u32>, out: &mut Vec<(u32, usize)>, _c: &Counters) {
            out.push((k, vs.len()));
        }
    }
    let splits: Vec<Vec<u32>> = (0..4).map(|s| (s * 25..(s + 1) * 25).collect()).collect();
    let clean_job =
        MapReduceJob::new(Double, Count, JobConfig::with_slots(2)).run(splits.clone()).unwrap();
    let faulty_job = MapReduceJob::new(Double, Count, JobConfig::with_slots(2).with_faults(1.0, 1))
        .run(splits)
        .unwrap();
    let sort = |mut v: Vec<(u32, usize)>| {
        v.sort_unstable();
        v
    };
    assert_eq!(sort(clean_job.outputs), sort(faulty_job.outputs));
    assert!(faulty_job.metrics.map_retries >= 2);
    assert!(faulty_job.metrics.reduce_retries >= 1);

    // and the DBSCAN-level MR result is stable run to run
    let again = MrDbscan::new(params, 3).run(Arc::clone(&data), 2).unwrap();
    assert_eq!(clean.clustering.canonicalize().labels, again.clustering.canonicalize().labels);
}

#[test]
fn accumulators_merge_exactly_once_under_injected_retries() {
    // every task's first two attempts fail; buffered accumulator
    // updates from those failed attempts must be discarded, so each
    // element is folded exactly once
    let cfg = ClusterConfig::local(4)
        .with_fault(FaultPlan::none().with_task_failures(FaultRule::with_prob(1.0, 2)))
        .with_max_attempts(5);
    let ctx = Context::new(cfg);
    let sum = ctx.accumulator(0u64);
    let adds = sum.clone();
    ctx.parallelize((1..=200u64).collect(), 8)
        .foreach_partition(move |_, data| {
            for v in data {
                adds.add(v);
            }
        })
        .unwrap();
    assert_eq!(sum.value(), 200 * 201 / 2, "each element folded exactly once despite retries");
}

#[test]
fn exhausting_the_attempt_budget_is_a_typed_error_not_a_hang() {
    // failures never stop firing: the job must abort with the typed
    // TaskFailed error after exactly max_task_attempts tries, and no
    // accumulator update from any of the doomed attempts may leak
    let cfg = ClusterConfig::local(2)
        .with_fault(FaultPlan::none().with_task_failures(FaultRule::with_prob(1.0, usize::MAX)))
        .with_max_attempts(3);
    let ctx = Context::new(cfg);
    let acc = ctx.accumulator(0u64);
    let adds = acc.clone();
    let err = ctx
        .parallelize((1..=100u64).collect(), 4)
        .foreach_partition(move |_, data| {
            for v in data {
                adds.add(v);
            }
        })
        .unwrap_err();
    match err {
        SparkError::TaskFailed { attempts, .. } => assert_eq!(attempts, 3),
        other => panic!("expected TaskFailed, got {other:?}"),
    }
    assert_eq!(acc.value(), 0, "failed attempts must not leak accumulator updates");
}

#[test]
fn runner_facade_surfaces_engine_fault_exhaustion() {
    // the same exhaustion, end to end through the DbscanRunner facade:
    // a typed RunnerError::Engine(TaskFailed), not a hang or a panic
    let (data, params) = data_and_params();
    let cfg = ClusterConfig::local(2)
        .with_fault(FaultPlan::none().with_task_failures(FaultRule::with_prob(1.0, usize::MAX)))
        .with_max_attempts(2);
    let ctx = Context::new(cfg);
    let env = RunEnv::engine(&ctx);
    let err = ShuffleDbscan::new(params).run_dbscan(&env, data).unwrap_err();
    match err {
        RunnerError::Engine(SparkError::TaskFailed { attempts, .. }) => assert_eq!(attempts, 2),
        other => panic!("expected Engine(TaskFailed), got {other}"),
    }
}

#[test]
fn text_file_reads_survive_all_but_one_datanode() {
    use scalable_dbscan::dfs::{DfsCluster, DfsConfig};
    let dfs = Arc::new(
        DfsCluster::new(DfsConfig { num_datanodes: 3, replication: 3, block_size: 8 }).unwrap(),
    );
    let content = "alpha\nbeta\ngamma\ndelta\n";
    dfs.write_file("/t.txt", content.as_bytes()).unwrap();
    // kill N-1 datanodes: every block still has its last replica
    dfs.kill_datanode(0).unwrap();
    dfs.kill_datanode(1).unwrap();
    let ctx = Context::new(ClusterConfig::local(2));
    let mut lines = ctx.text_file(Arc::clone(&dfs), "/t.txt").unwrap().collect().unwrap();
    lines.sort();
    assert_eq!(lines, vec!["alpha", "beta", "delta", "gamma"]);

    // kill the last holder: exhaustion is a typed storage error that
    // propagates through the task layer and wraps into RunnerError
    dfs.kill_datanode(2).unwrap();
    let err = ctx.text_file(Arc::clone(&dfs), "/t.txt").unwrap().collect().unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, SparkError::Storage(_)), "got {err:?}");
    assert!(msg.contains("all replicas lost"), "storage error names the cause: {msg}");
    let wrapped = RunnerError::from(err);
    assert!(matches!(wrapped, RunnerError::Engine(SparkError::Storage(_))));
}

#[test]
fn injected_dfs_read_faults_fall_back_across_replicas() {
    use scalable_dbscan::dfs::{DfsCluster, DfsConfig};
    let dfs = Arc::new(
        DfsCluster::new(DfsConfig { num_datanodes: 4, replication: 3, block_size: 8 }).unwrap(),
    );
    let content = "one\ntwo\nthree\nfour\nfive\n";
    dfs.write_file("/t.txt", content.as_bytes()).unwrap();
    let expect: Vec<String> = {
        let mut v: Vec<String> = content.lines().map(String::from).collect();
        v.sort();
        v
    };

    // curse at most one replica per block via the engine fault plan:
    // reads heal through the surviving replicas, the answer is intact
    let cfg = ClusterConfig::local(2)
        .with_fault(FaultPlan::none().with_dfs_read_failures(FaultRule::with_prob(1.0, 1)))
        .with_seed(7);
    let ctx = Context::new(cfg);
    let mut lines = ctx.text_file(Arc::clone(&dfs), "/t.txt").unwrap().collect().unwrap();
    lines.sort();
    assert_eq!(lines, expect);

    // curse every replica of every block: typed exhaustion, no hang
    let cursed = Context::new(
        ClusterConfig::local(2)
            .with_fault(FaultPlan::none().with_dfs_read_failures(FaultRule::with_prob(1.0, 3)))
            .with_seed(7),
    );
    let err = cursed.text_file(Arc::clone(&dfs), "/t.txt").unwrap().collect().unwrap_err();
    assert!(matches!(err, SparkError::Storage(_)), "got {err:?}");
}

#[test]
fn datanode_loss_does_not_lose_input_data() {
    use scalable_dbscan::datagen;
    use scalable_dbscan::dfs::{DfsCluster, DfsConfig};
    let (data, _) = data_and_params();
    let dfs = Arc::new(
        DfsCluster::new(DfsConfig { num_datanodes: 4, replication: 2, block_size: 4096 }).unwrap(),
    );
    datagen::write_dataset_to_dfs(&dfs, "/d.csv", &data).unwrap();
    dfs.kill_datanode(2).unwrap();
    let back = datagen::read_dataset_from_dfs(&dfs, "/d.csv").unwrap();
    assert_eq!(back, *data);
    // the read healed replication; another failure is survivable too
    dfs.kill_datanode(3).unwrap();
    let back2 = datagen::read_dataset_from_dfs(&dfs, "/d.csv").unwrap();
    assert_eq!(back2, *data);
}
