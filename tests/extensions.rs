//! Integration tests for the beyond-the-paper extensions: parameter
//! estimation, incremental maintenance, spatial pre-partitioning, and
//! the packed R-tree — all exercised through the public facade.

use scalable_dbscan::datagen::StandardDataset;
use scalable_dbscan::dbscan::{
    core_labels_equivalent, suggest_eps, IncrementalDbscan, SequentialDbscan,
};
use scalable_dbscan::prelude::*;
use scalable_dbscan::spatial::{RTree, SpatialIndex};
use std::sync::Arc;

fn catalog_data() -> (Arc<Dataset>, DbscanParams) {
    let spec = StandardDataset::C10k.scaled_spec(16);
    let (data, _) = spec.generate();
    (Arc::new(data), DbscanParams::new(spec.eps, spec.min_pts).unwrap())
}

#[test]
fn estimated_eps_recovers_catalog_structure() {
    let (data, table1) = catalog_data();
    // pretend we don't know Table I's eps; estimate it from the data
    let eps = suggest_eps(&data, table1.min_pts).expect("estimable");
    let est = SequentialDbscan::new(DbscanParams::new(eps, table1.min_pts).unwrap())
        .run(Arc::clone(&data));
    let official = SequentialDbscan::new(table1).run(Arc::clone(&data));
    assert_eq!(
        est.num_clusters(),
        official.num_clusters(),
        "estimated eps {eps} finds the same clusters as Table I's 25"
    );
}

#[test]
fn incremental_matches_batch_on_catalog_data() {
    let (data, params) = catalog_data();
    let mut inc = IncrementalDbscan::new(params, data.dim());
    for (_, row) in data.iter() {
        inc.insert(row);
    }
    let incremental = inc.clustering();
    let batch = SequentialDbscan::new(params).run(Arc::clone(&data));
    assert!(core_labels_equivalent(&incremental, &batch));
}

#[test]
fn spatial_partitioning_preserves_results_and_cuts_partials() {
    let (data, params) = catalog_data();
    let ctx = Context::new(ClusterConfig::local(8));
    let plain = SparkDbscan::new(params).partitions(8).exact().run(&ctx, Arc::clone(&data));
    let zord = SparkDbscan::new(params)
        .partitions(8)
        .exact()
        .spatial_partitioning(true)
        .run(&ctx, Arc::clone(&data));
    assert_eq!(
        plain.clustering.canonicalize().labels,
        zord.clustering.canonicalize().labels,
        "reordering is invisible in the results"
    );
    assert!(
        zord.num_partial_clusters < plain.num_partial_clusters,
        "z-order {} vs index-range {}",
        zord.num_partial_clusters,
        plain.num_partial_clusters
    );
    assert_eq!(zord.shuffle_records, 0, "pre-partitioning adds no shuffles");
}

#[test]
fn rtree_drives_sequential_dbscan_identically() {
    let (data, params) = catalog_data();
    let alg = SequentialDbscan::new(params);
    let via_rtree = alg.run_with_index(&RTree::build(Arc::clone(&data)));
    let via_kdtree = alg.run(Arc::clone(&data));
    assert_eq!(via_rtree.canonicalize().labels, via_kdtree.canonicalize().labels);
}

#[test]
fn rtree_and_kdtree_agree_on_catalog_queries() {
    let (data, params) = catalog_data();
    let rt = RTree::build(Arc::clone(&data));
    let kd = KdTree::build(Arc::clone(&data));
    for (_, row) in data.iter().step_by(53) {
        let mut a = rt.range(row, params.eps);
        let mut b = kd.range(row, params.eps);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
