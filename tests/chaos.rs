//! Differential chaos harness: every DBSCAN entrypoint, driven through
//! the [`DbscanRunner`] facade, must produce the *same clustering* under
//! a matrix of seeded fault plans as it does on a clean run — and the
//! engine's recovery must be visible and surgical in the trace.
//!
//! The matrix is `SEEDS x plans() x runners()`. Every run is
//! reproducible from the `seed=.. plan=.. runner=..` tag embedded in
//! each panic message: the dataset, the fault schedule and the engine
//! configuration are all pure functions of the seed. On failure the
//! chaos run's Chrome trace is written to `results/` so CI can upload
//! it as an artifact.

use scalable_dbscan::dbscan::{
    MrDbscan, MrDbscanIterative, SequentialDbscan, ShuffleDbscan, SparkDbscan,
};
use scalable_dbscan::engine::{
    chrome_trace_json, EventKind, ExecutorKillAt, FaultPlan, FaultRule, Trace,
};
use scalable_dbscan::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

const SEEDS: [u64; 4] = [1, 2, 3, 4];
const PARTITIONS: usize = 4;

/// The fault plans of the chaos campaign. Each plan stresses one
/// recovery path; all are deterministic in the context seed.
fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        // task attempts fail (twice per task at worst) and a third of
        // tasks run slow: retry + straggler accounting
        (
            "task-failures",
            FaultPlan::none()
                .with_task_failures(FaultRule::with_prob(1.0, 2))
                .with_stragglers(FaultRule::with_prob(0.3, 1), 2),
        ),
        // first fetch of every reduce task fails, marking a map output
        // lost: lineage recomputation of exactly the lost partitions
        (
            "fetch-failures",
            FaultPlan::none()
                .with_fetch_failures(FaultRule::always_first(1))
                .with_task_failures(FaultRule::with_prob(0.4, 1)),
        ),
        // executors die mid-stage, dropping their shuffle outputs and
        // in-flight attempts; mild task faults on top
        (
            "executor-kill",
            FaultPlan::none()
                .with_task_failures(FaultRule::with_prob(0.3, 1))
                .with_executor_kill(ExecutorKillAt { stage: 1, executor: 0, after_tasks: 1 })
                .with_executor_kill(ExecutorKillAt { stage: 3, executor: 1, after_tasks: 1 }),
        ),
    ]
}

/// All five entrypoints behind the facade. `exact()` variants so every
/// runner agrees with the sequential oracle point for point.
fn runners(params: DbscanParams) -> Vec<Box<dyn DbscanRunner>> {
    vec![
        Box::new(SequentialDbscan::new(params)),
        Box::new(SparkDbscan::new(params).exact()),
        Box::new(ShuffleDbscan::new(params).partitions(PARTITIONS)),
        Box::new(MrDbscan::new(params, PARTITIONS).exact()),
        Box::new(MrDbscanIterative::new(params, PARTITIONS)),
    ]
}

/// Seeded workload: the dataset itself varies with the chaos seed.
fn dataset(seed: u64) -> (Arc<Dataset>, DbscanParams) {
    let mut spec = StandardDataset::C10k.scaled_spec(32);
    spec.params.seed = 1000 + seed;
    let (data, _) = spec.generate();
    (Arc::new(data), DbscanParams::new(spec.eps, spec.min_pts).unwrap())
}

fn chaos_config(seed: u64, plan: &FaultPlan) -> ClusterConfig {
    ClusterConfig::local(PARTITIONS)
        .with_tracing()
        .with_seed(seed)
        .with_fault(plan.clone())
        .with_max_attempts(6)
}

/// On a failed invariant: persist the chaos run's trace for the CI
/// artifact, then panic with the full reproduction tag.
fn fail(tag: &str, trace: Option<&Trace>, msg: &str) -> ! {
    if let Some(t) = trace {
        let _ = std::fs::create_dir_all("results");
        let path = format!("results/chaos-{}.json", tag.replace(' ', "-").replace('=', "_"));
        if std::fs::write(&path, chrome_trace_json(t)).is_ok() {
            eprintln!("chaos: wrote failing trace to {path}");
        }
    }
    panic!("chaos[{tag}]: {msg}");
}

type RecoverySets = (HashSet<(usize, usize)>, HashSet<(usize, usize)>);

/// (lost, recomputed) map-output identity sets from a trace.
fn lost_and_recomputed(t: &Trace) -> RecoverySets {
    let mut lost = HashSet::new();
    let mut recomputed = HashSet::new();
    for e in &t.events {
        match e.kind {
            EventKind::MapOutputLost { shuffle, partition } => {
                lost.insert((shuffle, partition));
            }
            EventKind::MapOutputRecomputed { shuffle, partition } => {
                recomputed.insert((shuffle, partition));
            }
            _ => {}
        }
    }
    (lost, recomputed)
}

#[test]
fn chaos_matrix_all_runners_all_plans_all_seeds() {
    for seed in SEEDS {
        let (data, params) = dataset(seed);
        let oracle = SequentialDbscan::new(params).run(Arc::clone(&data));

        // clean reference labels per runner (engine context without
        // faults; the facade routes each runner appropriately)
        let clean_ctx = Context::new(ClusterConfig::local(PARTITIONS).with_seed(seed));
        let clean_env = RunEnv::engine(&clean_ctx);
        let clean_labels: Vec<Vec<Label>> = runners(params)
            .iter()
            .map(|r| {
                let out = r
                    .run_dbscan(&clean_env, Arc::clone(&data))
                    .unwrap_or_else(|e| panic!("chaos[seed={seed} clean {}]: {e}", r.name()));
                out.clustering.canonicalize().labels
            })
            .collect();

        for (plan_name, plan) in plans() {
            for (i, runner) in runners(params).iter().enumerate() {
                let tag = format!("seed={seed} plan={plan_name} runner={}", runner.name());
                let ctx = Context::new(chaos_config(seed, &plan));
                let env = RunEnv::engine(&ctx);
                let out = match runner.run_dbscan(&env, Arc::clone(&data)) {
                    Ok(out) => out,
                    Err(e) => {
                        fail(&tag, Some(&ctx.trace().snapshot()), &format!("run failed: {e}"))
                    }
                };
                let trace = ctx.trace().snapshot();

                // (a) byte-identical clustering vs the clean run, and
                // point-for-point agreement with the sequential oracle
                let labels = out.clustering.canonicalize().labels;
                if labels != clean_labels[i] {
                    fail(&tag, Some(&trace), "clustering differs from clean run");
                }
                if !scalable_dbscan::dbscan::core_labels_equivalent(&out.clustering, &oracle) {
                    fail(&tag, Some(&trace), "clustering differs from sequential oracle");
                }

                // (c) recovery is surgical: nothing is recomputed that
                // was not first marked lost, and under the fetch plan
                // every lost output is recomputed (the job finished)
                let (lost, recomputed) = lost_and_recomputed(&trace);
                if !recomputed.is_subset(&lost) {
                    fail(&tag, Some(&trace), "recomputed a map output that was never lost");
                }
                if plan_name == "fetch-failures" && lost != recomputed {
                    fail(&tag, Some(&trace), "lost map outputs were not all recomputed");
                }
                if plan_name == "fetch-failures" && runner.name() == "shuffle" && lost.is_empty() {
                    fail(&tag, Some(&trace), "fetch faults never fired in the shuffle runner");
                }
            }
        }
    }
}

#[test]
fn chaos_accumulators_merge_once_under_every_plan() {
    // (b) accumulator merge-once: under every plan of the matrix a
    // summing accumulator sees each element exactly once, regardless
    // of how many attempts ran
    for seed in SEEDS {
        for (plan_name, plan) in plans() {
            let tag = format!("seed={seed} plan={plan_name} runner=accumulator");
            let ctx = Context::new(chaos_config(seed, &plan));
            let acc = ctx.accumulator(0u64);
            let adds = acc.clone();
            let r = ctx.parallelize((1..=500u64).collect(), PARTITIONS * 2).foreach_partition(
                move |_, data| {
                    for v in data {
                        adds.add(v);
                    }
                },
            );
            if let Err(e) = r {
                fail(&tag, Some(&ctx.trace().snapshot()), &format!("job failed: {e}"));
            }
            let got = acc.value();
            if got != 500 * 501 / 2 {
                fail(
                    &tag,
                    Some(&ctx.trace().snapshot()),
                    &format!("accumulator saw {got}, want {}", 500 * 501 / 2),
                );
            }
        }
    }
}

#[test]
fn chaos_cost_balanced_matches_clean_equal_count() {
    // the cost planner only moves partition *cuts*; SEED semantics are
    // invariant under any contiguous index ranges, so a cost-balanced
    // exact run under every fault plan must stay byte-identical to the
    // clean equal-count reference
    for seed in SEEDS {
        let (data, params) = dataset(seed);

        let clean_ctx = Context::new(ClusterConfig::local(PARTITIONS).with_seed(seed));
        let reference = SparkDbscan::new(params)
            .exact()
            .run(&clean_ctx, Arc::clone(&data))
            .clustering
            .canonicalize();

        for (plan_name, plan) in plans() {
            let tag = format!("seed={seed} plan={plan_name} runner=spark-cost-balanced");
            let ctx = Context::new(chaos_config(seed, &plan));
            let out = SparkDbscan::new(params)
                .exact()
                .balance(Balance::Cost)
                .run(&ctx, Arc::clone(&data));
            let trace = ctx.trace().snapshot();
            if out.clustering.canonicalize().labels != reference.labels {
                fail(&tag, Some(&trace), "cost-balanced labels differ from clean equal-count");
            }
            let (lost, recomputed) = lost_and_recomputed(&trace);
            if !recomputed.is_subset(&lost) {
                fail(&tag, Some(&trace), "recomputed a map output that was never lost");
            }
            if out.predicted_cost.as_ref().is_none_or(|p| p.len() != PARTITIONS) {
                fail(&tag, Some(&trace), "cost plan predictions missing from the result");
            }
        }
    }
}

#[test]
fn chaos_overlapped_collection_matches_clean_at_every_thread_count() {
    // the overlapped collector folds each task's partial clusters into
    // the driver accumulator *as the task finishes* — under retries,
    // stragglers and executor kills the fold must still apply exactly
    // once per task, and the parallel build/merge must not let thread
    // scheduling leak into the labels. Clean 1-thread run is the
    // reference; every plan × thread combination must reproduce it.
    for seed in SEEDS {
        let (data, params) = dataset(seed);
        let build = |threads| {
            BuildConfig::default().with_threads(threads).with_bucket_size(8).with_par_cutoff(64)
        };

        let clean_ctx = Context::new(ClusterConfig::local(PARTITIONS).with_seed(seed));
        let reference = SparkDbscan::new(params)
            .exact()
            .build_config(build(1))
            .merge_threads(1)
            .run(&clean_ctx, Arc::clone(&data));
        let ref_labels = reference.clustering.canonicalize().labels;

        for (plan_name, plan) in plans() {
            for threads in [1usize, 8] {
                let tag =
                    format!("seed={seed} plan={plan_name} runner=spark-overlapped-t{threads}");
                let ctx = Context::new(chaos_config(seed, &plan));
                let out = SparkDbscan::new(params)
                    .exact()
                    .build_config(build(threads))
                    .merge_threads(threads)
                    .run(&ctx, Arc::clone(&data));
                let trace = ctx.trace().snapshot();
                if out.clustering.canonicalize().labels != ref_labels {
                    fail(&tag, Some(&trace), "overlapped labels differ from clean reference");
                }
                if out.num_partial_clusters != reference.num_partial_clusters
                    || out.merge_ops != reference.merge_ops
                {
                    fail(&tag, Some(&trace), "partial-cluster accounting differs from clean run");
                }
                let (lost, recomputed) = lost_and_recomputed(&trace);
                if !recomputed.is_subset(&lost) {
                    fail(&tag, Some(&trace), "recomputed a map output that was never lost");
                }
            }
        }
    }
}

#[test]
fn chaos_tight_budget_matches_unbudgeted() {
    // a per-executor memory budget changes where bytes live — spill,
    // eviction, scheduler backpressure — never what gets computed:
    // every runner under every fault plan with a tight budget must
    // reproduce the clean unbudgeted labels byte for byte
    for seed in SEEDS {
        let (data, params) = dataset(seed);
        // just above the largest single task reservation (points per
        // partition × the driver's 48-byte working-set estimate): small
        // enough to crowd the lanes and spill the driver fold, big
        // enough that no single reservation exceeds the whole budget
        let budget = (data.len().div_ceil(PARTITIONS) * 48 * 5 / 4) as u64;

        let clean_ctx = Context::new(ClusterConfig::local(PARTITIONS).with_seed(seed));
        let clean_env = RunEnv::engine(&clean_ctx);
        let clean_labels: Vec<Vec<Label>> = runners(params)
            .iter()
            .map(|r| {
                let out = r
                    .run_dbscan(&clean_env, Arc::clone(&data))
                    .unwrap_or_else(|e| panic!("chaos[seed={seed} clean {}]: {e}", r.name()));
                out.clustering.canonicalize().labels
            })
            .collect();

        for (plan_name, plan) in plans() {
            for (i, runner) in runners(params).iter().enumerate() {
                let tag = format!(
                    "seed={seed} plan={plan_name} runner={} budget={budget}",
                    runner.name()
                );
                let ctx = Context::new(chaos_config(seed, &plan).with_memory_budget(budget));
                let env = RunEnv::engine(&ctx);
                let out = match runner.run_dbscan(&env, Arc::clone(&data)) {
                    Ok(out) => out,
                    Err(e) => fail(
                        &tag,
                        Some(&ctx.trace().snapshot()),
                        &format!("budgeted run failed: {e}"),
                    ),
                };
                let trace = ctx.trace().snapshot();
                if out.clustering.canonicalize().labels != clean_labels[i] {
                    fail(&tag, Some(&trace), "budgeted clustering differs from clean run");
                }
                let (lost, recomputed) = lost_and_recomputed(&trace);
                if !recomputed.is_subset(&lost) {
                    fail(&tag, Some(&trace), "recomputed a map output that was never lost");
                }
            }
        }
    }
}

#[test]
fn chaos_speculation_on_matches_clean_under_every_plan() {
    // speculative execution races duplicate attempts against slow
    // originals; first-commit-wins must make the race invisible: every
    // runner under every fault plan with speculation enabled reproduces
    // the clean speculation-free labels byte for byte, recovery stays
    // surgical, and a summing accumulator still merges exactly once
    for seed in SEEDS {
        let (data, params) = dataset(seed);

        let clean_ctx = Context::new(ClusterConfig::local(PARTITIONS).with_seed(seed));
        let clean_env = RunEnv::engine(&clean_ctx);
        let clean_labels: Vec<Vec<Label>> = runners(params)
            .iter()
            .map(|r| {
                let out = r
                    .run_dbscan(&clean_env, Arc::clone(&data))
                    .unwrap_or_else(|e| panic!("chaos[seed={seed} clean {}]: {e}", r.name()));
                out.clustering.canonicalize().labels
            })
            .collect();

        for (plan_name, plan) in plans() {
            for (i, runner) in runners(params).iter().enumerate() {
                let tag =
                    format!("seed={seed} plan={plan_name} runner={} speculation=on", runner.name());
                let ctx = Context::new(
                    chaos_config(seed, &plan).with_speculation(SpeculationConfig::on()),
                );
                let env = RunEnv::engine(&ctx);
                let out = match runner.run_dbscan(&env, Arc::clone(&data)) {
                    Ok(out) => out,
                    Err(e) => fail(
                        &tag,
                        Some(&ctx.trace().snapshot()),
                        &format!("speculative run failed: {e}"),
                    ),
                };
                let trace = ctx.trace().snapshot();
                if out.clustering.canonicalize().labels != clean_labels[i] {
                    fail(&tag, Some(&trace), "speculative clustering differs from clean run");
                }
                let (lost, recomputed) = lost_and_recomputed(&trace);
                if !recomputed.is_subset(&lost) {
                    fail(&tag, Some(&trace), "recomputed a map output that was never lost");
                }
            }

            // merge-once survives losing clones: the duplicate attempt's
            // accumulator contribution must be discarded with its reply
            let tag = format!("seed={seed} plan={plan_name} runner=accumulator speculation=on");
            let ctx =
                Context::new(chaos_config(seed, &plan).with_speculation(SpeculationConfig::on()));
            let acc = ctx.accumulator(0u64);
            let adds = acc.clone();
            let r = ctx.parallelize((1..=500u64).collect(), PARTITIONS * 2).foreach_partition(
                move |_, data| {
                    for v in data {
                        adds.add(v);
                    }
                },
            );
            if let Err(e) = r {
                fail(&tag, Some(&ctx.trace().snapshot()), &format!("job failed: {e}"));
            }
            let got = acc.value();
            if got != 500 * 501 / 2 {
                fail(
                    &tag,
                    Some(&ctx.trace().snapshot()),
                    &format!("accumulator saw {got}, want {}", 500 * 501 / 2),
                );
            }
        }
    }
}

#[test]
fn chaos_batched_kernels_match_clean_under_every_plan() {
    // batched frontier expansion and the min_pts count fast path reuse
    // per-worker scratch across task attempts — retries, stragglers and
    // executor kills must never leak a stale epoch, queue chunk or
    // counter into the labels: every kernel cell under every fault plan
    // reproduces the clean default-kernel run byte for byte
    let kernels = [
        KernelConfig::default().with_batch(16),
        KernelConfig::default().with_batch(16).with_count_fast_path(true),
        KernelConfig::scalar().with_batch(3),
    ];
    for seed in SEEDS {
        let (data, params) = dataset(seed);

        let clean_ctx = Context::new(ClusterConfig::local(PARTITIONS).with_seed(seed));
        let reference = SparkDbscan::new(params)
            .exact()
            .run(&clean_ctx, Arc::clone(&data))
            .clustering
            .canonicalize();

        for (plan_name, plan) in plans() {
            for kernel in kernels {
                let tag = format!(
                    "seed={seed} plan={plan_name} runner=spark-kernel-b{}{}",
                    kernel.batch,
                    if kernel.count_fast_path { "-fast" } else { "" }
                );
                let ctx = Context::new(chaos_config(seed, &plan));
                let res = Resources::new().with_build(BuildConfig::default().with_kernel(kernel));
                let out =
                    SparkDbscan::new(params).exact().resources(res).run(&ctx, Arc::clone(&data));
                let trace = ctx.trace().snapshot();
                if out.clustering.canonicalize().labels != reference.labels {
                    fail(&tag, Some(&trace), "batched-kernel labels differ from clean run");
                }
                let (lost, recomputed) = lost_and_recomputed(&trace);
                if !recomputed.is_subset(&lost) {
                    fail(&tag, Some(&trace), "recomputed a map output that was never lost");
                }
            }
        }
    }
}

#[test]
fn chaos_runs_are_reproducible_from_the_seed_alone() {
    // the printed tag is the whole reproduction recipe: same seed +
    // plan + runner must give the same clustering AND the same
    // recovery set, twice
    let seed = SEEDS[0];
    let (data, params) = dataset(seed);
    let (_, plan) = plans().remove(1); // fetch-failures
    let run = || {
        let ctx = Context::new(chaos_config(seed, &plan));
        let r = ShuffleDbscan::new(params)
            .partitions(PARTITIONS)
            .run(&ctx, Arc::clone(&data))
            .expect("chaos run");
        (r.clustering.canonicalize().labels, lost_and_recomputed(&ctx.trace().snapshot()))
    };
    let (la, sets_a) = run();
    let (lb, sets_b) = run();
    assert_eq!(la, lb, "labels must be identical run to run");
    assert_eq!(sets_a, sets_b, "lost/recomputed sets must be identical run to run");
    assert!(!sets_a.0.is_empty(), "fetch plan must actually lose map outputs");
}
