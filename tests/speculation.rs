//! Speculative-execution acceptance tests (ISSUE 10): the production
//! straggler detector must race duplicate attempts against real
//! stragglers, and the first-commit-wins protocol must make the race
//! invisible — labels, shuffle outputs and accumulators are byte-for-
//! byte identical to a speculation-free run, and stripping the
//! speculation events from the trace recovers the clean trace exactly.
//!
//! The chaos harness (`tests/chaos.rs`) covers speculation under fault
//! plans that also fail tasks and kill executors; here the plans are
//! pure stragglers so the *stripped-trace identity* invariant holds in
//! full (with failures, a winning clone can legitimately elide a retry
//! chain the clean run would record).

use scalable_dbscan::engine::{EventKind, FaultPlan, FaultRule, Trace};
use scalable_dbscan::prelude::*;
use std::time::Duration;

const PARTITIONS: usize = 8;

/// Roughly a third of attempts sleep for a real 40ms — far past the
/// detector's busy-median threshold, fast enough to keep tests quick.
fn straggler_plan() -> FaultPlan {
    FaultPlan::none().with_stragglers(FaultRule::with_prob(0.35, 1), 40)
}

fn config(seed: u64, workers: usize, spec: SpeculationConfig) -> ClusterConfig {
    let mut cfg = ClusterConfig::local(PARTITIONS)
        .with_tracing()
        .with_seed(seed)
        .with_fault(straggler_plan())
        .with_speculation(spec);
    cfg.worker_threads = workers;
    cfg
}

/// One shuffle job (per-key sums) plus one accumulator job, both prone
/// to straggling. Returns the sorted reduction, the accumulator total
/// and the trace snapshot — taken after a grace sleep so losing twins
/// still running on the pool finish recording their executor-side
/// events (the stage commits without waiting for losers).
fn run_jobs(seed: u64, workers: usize, spec: SpeculationConfig) -> (Vec<(u64, u64)>, u64, Trace) {
    let ctx = Context::new(config(seed, workers, spec));

    let pairs: Vec<(u64, u64)> = (0..240).map(|i| (i % 7, i)).collect();
    let mut reduced = ctx
        .parallelize(pairs, PARTITIONS)
        .reduce_by_key(PARTITIONS, |a, b| a + b)
        .collect()
        .expect("shuffle job");
    reduced.sort_unstable();

    let acc = ctx.accumulator(0u64);
    let adds = acc.clone();
    ctx.parallelize((1..=400u64).collect(), PARTITIONS)
        .foreach_partition(move |_, data| {
            for v in data {
                adds.add(v);
            }
        })
        .expect("accumulator job");

    std::thread::sleep(Duration::from_millis(250));
    (reduced, acc.value(), ctx.trace().snapshot())
}

fn expected_reduction() -> Vec<(u64, u64)> {
    let mut sums = vec![0u64; 7];
    for i in 0..240u64 {
        sums[(i % 7) as usize] += i;
    }
    sums.into_iter().enumerate().map(|(k, v)| (k as u64, v)).collect()
}

fn speculation_counts(t: &Trace) -> (usize, usize, usize) {
    let (mut launches, mut wins, mut losses) = (0, 0, 0);
    for e in &t.events {
        match e.kind {
            EventKind::SpeculativeLaunch { .. } => launches += 1,
            EventKind::SpeculativeWin { .. } => wins += 1,
            EventKind::SpeculativeLoss { .. } => losses += 1,
            _ => {}
        }
    }
    (launches, wins, losses)
}

#[test]
fn detector_races_clones_against_real_stragglers() {
    // which attempts straggle is a per-seed coin flip, so a single seed
    // can legitimately draw no stragglers (or so many the completion
    // quantile is never reached before they finish); across a handful
    // of seeds the detector must demonstrably fire, and every run —
    // raced or not — must still produce the exact sums
    let mut launches_total = 0;
    for seed in 1..=6 {
        let (reduced, total, trace) = run_jobs(seed, 4, SpeculationConfig::on());
        assert_eq!(reduced, expected_reduction(), "seed {seed}");
        assert_eq!(total, 400 * 401 / 2, "seed {seed}");
        let (launches, wins, losses) = speculation_counts(&trace);
        assert!(wins <= launches, "seed {seed}: wins {wins} > launches {launches}");
        assert!(losses <= 2 * launches, "seed {seed}: losses {losses}, launches {launches}");
        launches_total += launches;
    }
    assert!(
        launches_total >= 1,
        "the straggler detector never launched a clone across six seeded runs"
    );
}

#[test]
fn speculation_is_invisible_at_every_worker_count() {
    // first-commit-wins end to end: under a pure-straggler plan at 1, 2
    // and 8 worker threads, a speculative run must reproduce the
    // speculation-free results exactly, and its trace minus the
    // speculation events must be byte-identical to the clean trace
    for workers in [1, 2, 8] {
        let (off_red, off_total, off_trace) = run_jobs(9, workers, SpeculationConfig::OFF);
        let (on_red, on_total, on_trace) = run_jobs(9, workers, SpeculationConfig::on());

        assert_eq!(on_red, off_red, "workers {workers}: reductions differ");
        assert_eq!(on_total, off_total, "workers {workers}: accumulator totals differ");

        let (off_launches, ..) = speculation_counts(&off_trace);
        assert_eq!(off_launches, 0, "speculation off must never launch clones");
        assert_eq!(
            format!("{:?}", on_trace.without_speculation()),
            format!("{:?}", off_trace),
            "workers {workers}: stripped speculative trace differs from the clean trace"
        );
    }
}

#[test]
fn stripping_a_clean_trace_is_a_no_op() {
    let (_, _, trace) = run_jobs(3, 4, SpeculationConfig::OFF);
    assert_eq!(format!("{:?}", trace.without_speculation()), format!("{:?}", trace));
}
