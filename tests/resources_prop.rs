//! Property tests for the `Resources::from_env` parsing contract:
//! whatever garbage the environment holds — junk words, overflow
//! digits, empty strings, control characters — the parser must never
//! panic and must land on either the parsed value or the documented
//! default (threads `0` = auto, memory unbounded).

use proptest::prelude::*;
use scalable_dbscan::dbscan::Resources;
use scalable_dbscan::prelude::MemoryBudget;

/// An optional arbitrary ASCII string (including control characters,
/// digits and whitespace), standing in for a raw environment value.
fn arb_env_value() -> impl Strategy<Value = Option<String>> {
    (any::<bool>(), prop::collection::vec(0u8..128, 0..14))
        .prop_map(|(set, bytes)| set.then(|| bytes.into_iter().map(char::from).collect()))
}

/// Whitespace padding assembled from spaces, tabs and newlines.
fn arb_padding() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..3, 0..4)
        .prop_map(|ix| ix.into_iter().map(|i| [' ', '\t', '\n'][i]).collect())
}

/// The documented parsing contract, restated independently of the
/// implementation: trimmed, non-empty, ASCII digits only. Notably
/// stricter than integer `FromStr`, which would accept a leading `+`.
fn strict_uint<T: std::str::FromStr>(v: &str) -> Option<T> {
    let t = v.trim();
    (!t.is_empty() && t.bytes().all(|b| b.is_ascii_digit())).then(|| t.parse().ok()).flatten()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn arbitrary_env_values_never_panic(
        threads in arb_env_value(),
        budget in arb_env_value(),
    ) {
        let r = Resources::from_env_values(threads.as_deref(), budget.as_deref());
        // whatever happened, the result is either the documented default
        // or a faithfully parsed override — mirroring the contract, not
        // the implementation
        match threads.as_deref().and_then(strict_uint::<usize>) {
            Some(t) => prop_assert_eq!(r.build.threads, t),
            None => prop_assert_eq!(r.build.threads, 0, "junk threads must mean auto"),
        }
        match budget.as_deref().and_then(strict_uint::<u64>) {
            Some(b) => prop_assert_eq!(r.memory, MemoryBudget::per_executor(b)),
            None => prop_assert!(!r.memory.is_bounded(), "junk budget must mean unbounded"),
        }
    }

    #[test]
    fn numeric_values_round_trip(
        threads in 0usize..1_000_000,
        budget in 1u64..u64::MAX,
    ) {
        let t = threads.to_string();
        let b = budget.to_string();
        let r = Resources::from_env_values(Some(&t), Some(&b));
        prop_assert_eq!(r.build.threads, threads);
        prop_assert_eq!(r.memory, MemoryBudget::per_executor(budget));
    }

    #[test]
    fn surrounding_whitespace_is_trimmed(
        threads in 0usize..64,
        budget in 1u64..1_000_000_000_000,
        pad_l in arb_padding(),
        pad_r in arb_padding(),
    ) {
        let t = format!("{pad_l}{threads}{pad_r}");
        let b = format!("{pad_r}{budget}{pad_l}");
        let r = Resources::from_env_values(Some(&t), Some(&b));
        prop_assert_eq!(r.build.threads, threads);
        prop_assert_eq!(r.memory.bytes(), budget);
    }
}

#[test]
fn documented_defaults_for_the_usual_suspects() {
    // unset: full library defaults
    assert_eq!(Resources::from_env_values(None, None), Resources::new());
    // junk, empty, signs, overflow, inner whitespace, unicode digits:
    // all fall back to the documented defaults
    for bad in [
        "",
        "   ",
        "lots",
        "-1",
        "+8",
        "+4096",
        "1e6",
        "0x10",
        "4 threads",
        "1 0",
        "١٢٣",
        "99999999999999999999999999999999",
        "18446744073709551616", // u64::MAX + 1
    ] {
        let r = Resources::from_env_values(Some(bad), Some(bad));
        assert_eq!(r.build.threads, 0, "threads from {bad:?}");
        assert!(!r.memory.is_bounded(), "budget from {bad:?}");
    }
}

#[test]
fn leading_plus_sign_is_rejected_as_junk() {
    // `str::parse` accepts an explicit plus, but the env contract is
    // strictly digit-only: `+8` in an environment variable is far more
    // likely a templating bug than an intentional sign, so it falls
    // back to the documented defaults instead of half-parsing
    let r = Resources::from_env_values(Some("+8"), Some("+4096"));
    assert_eq!(r.build.threads, 0, "signed threads value must mean auto");
    assert!(!r.memory.is_bounded(), "signed budget value must mean unbounded");
}

#[test]
fn zero_means_auto_threads_but_one_byte_budget() {
    let r = Resources::from_env_values(Some("0"), Some("0"));
    assert_eq!(r.build.threads, 0);
    assert!(r.memory.is_bounded());
    assert_eq!(r.memory.bytes(), 1, "MemoryBudget::per_executor clamps 0 to 1");
}

#[test]
fn u64_max_budget_is_the_unbounded_sentinel_edge() {
    // u64::MAX parses, but MemoryBudget uses that value as its
    // "unbounded" sentinel — the one documented quirk of the contract
    let r = Resources::from_env_values(None, Some(&u64::MAX.to_string()));
    assert!(!r.memory.is_bounded());
    assert_eq!(r.memory.bytes(), u64::MAX);
}
