//! End-to-end integration: datagen → mini-DFS → sparklet RDD → SEED
//! DBSCAN → validation, the full Algorithm 2 pipeline across crates.

use scalable_dbscan::datagen::{self, StandardDataset};
use scalable_dbscan::dbscan::{core_labels_equivalent, MrDbscan};
use scalable_dbscan::dfs::{DfsCluster, DfsConfig};
use scalable_dbscan::prelude::*;
use std::sync::Arc;

fn pipeline_dataset() -> (Arc<Dataset>, DbscanParams) {
    let spec = StandardDataset::R10k.scaled_spec(16); // 625 points
    let (data, _) = spec.generate();
    (Arc::new(data), DbscanParams::new(spec.eps, spec.min_pts).unwrap())
}

#[test]
fn hdfs_to_rdd_to_clustering_matches_direct_path() {
    let (data, params) = pipeline_dataset();

    // store as CSV on the DFS, multi-block
    let dfs = Arc::new(
        DfsCluster::new(DfsConfig { num_datanodes: 3, replication: 2, block_size: 8 * 1024 })
            .unwrap(),
    );
    datagen::write_dataset_to_dfs(&dfs, "/in.csv", &data).unwrap();
    assert!(dfs.stat("/in.csv").unwrap().num_blocks > 1);

    // read back through the engine (one partition per block)
    let ctx = Context::new(ClusterConfig::local(4));
    let parsed: Vec<Vec<f64>> = ctx
        .text_file(Arc::clone(&dfs), "/in.csv")
        .unwrap()
        .map(|l| datagen::parse_csv_row(&l).expect("csv row"))
        .collect()
        .unwrap();
    let roundtripped = Arc::new(Dataset::from_rows(parsed));
    assert_eq!(*roundtripped, *data, "DFS + line-split roundtrip is lossless");

    // cluster both paths and compare
    let via_dfs = SparkDbscan::new(params).run(&ctx, roundtripped);
    let direct = SparkDbscan::new(params).run(&ctx, Arc::clone(&data));
    assert_eq!(via_dfs.clustering.canonicalize().labels, direct.clustering.canonicalize().labels);
}

#[test]
fn all_four_implementations_agree() {
    let (data, params) = pipeline_dataset();
    let seq = SequentialDbscan::new(params).run(Arc::clone(&data));

    let ctx = Context::new(ClusterConfig::local(4));
    let spark = SparkDbscan::new(params).run(&ctx, Arc::clone(&data));
    assert!(core_labels_equivalent(&spark.clustering, &seq), "spark vs sequential");

    let exact = SparkDbscan::new(params).partitions(7).exact().run(&ctx, Arc::clone(&data));
    assert!(core_labels_equivalent(&exact.clustering, &seq), "exact-mode vs sequential");

    let mr = MrDbscan::new(params, 4).run(Arc::clone(&data), 2).unwrap();
    assert!(core_labels_equivalent(&mr.clustering, &seq), "mapreduce vs sequential");

    let shuffle =
        scalable_dbscan::dbscan::ShuffleDbscan::new(params).run(&ctx, Arc::clone(&data)).unwrap();
    assert!(core_labels_equivalent(&shuffle.clustering, &seq), "shuffle strawman vs sequential");
}

#[test]
fn seed_dbscan_moves_zero_shuffle_data_strawman_does_not() {
    let (data, params) = pipeline_dataset();
    let ctx = Context::new(ClusterConfig::local(4));
    let spark = SparkDbscan::new(params).run(&ctx, Arc::clone(&data));
    assert_eq!(spark.shuffle_records, 0);

    let ctx2 = Context::new(ClusterConfig::local(4));
    let strawman = scalable_dbscan::dbscan::ShuffleDbscan::new(params).run(&ctx2, data).unwrap();
    assert!(strawman.shuffle_records > 0);
    assert!(strawman.shuffle_bytes > 0);
}

#[test]
fn partial_clusters_and_seeds_behave_like_fig4() {
    // a single chain across 2 partitions reproduces Fig. 4's structure:
    // each side builds one partial cluster whose only out-of-range
    // member is the SEED pointing at the other side
    let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
    let data = Arc::new(Dataset::from_rows(rows));
    let params = DbscanParams::new(1.2, 2).unwrap();
    let ctx = Context::new(ClusterConfig::local(2));
    let r = SparkDbscan::new(params).partitions(2).run(&ctx, data);
    assert_eq!(r.num_partial_clusters, 2);
    assert_eq!(r.merge_ops, 1, "C[0] absorbs its master exactly once");
    assert_eq!(r.clustering.num_clusters(), 1);
}

#[test]
fn dataset_scaling_does_not_change_structure() {
    // same generator, two scales: cluster count is stable, noise ratio
    // is stable — the property that makes --scale presets meaningful
    let small = StandardDataset::C10k.scaled_spec(32).generate();
    let large = StandardDataset::C10k.scaled_spec(8).generate();
    let ratio_small = small.1.noise_count() as f64 / small.0.len() as f64;
    let ratio_large = large.1.noise_count() as f64 / large.0.len() as f64;
    assert!((ratio_small - ratio_large).abs() < 0.03);
}

#[test]
fn paper_mode_quality_on_realistic_catalog_data() {
    // on the Table-I-style datasets (the regime the paper actually
    // evaluated) the literal heuristic is near-exact even at many
    // partitions — quantified here, bounded-loss on adversarial data
    // is covered by tests/equivalence_prop.rs
    use scalable_dbscan::dbscan::adjusted_rand_index;
    for ds in [StandardDataset::C10k, StandardDataset::R10k] {
        let spec = ds.scaled_spec(16);
        let (data, _) = spec.generate();
        let data = Arc::new(data);
        let params = DbscanParams::new(spec.eps, spec.min_pts).unwrap();
        let seq = SequentialDbscan::new(params).run(Arc::clone(&data));
        let ctx = Context::new(ClusterConfig::local(4));
        for p in [4, 16] {
            let r = SparkDbscan::new(params).partitions(p).run(&ctx, Arc::clone(&data));
            let ari = adjusted_rand_index(&r.clustering, &seq);
            // at 1/16 scale a single missed SEED merge splits one of
            // only ~4 clusters, so the floor is charitable; the exact
            // mode (tested elsewhere) has ARI == 1.0 by construction
            assert!(ari > 0.80, "{}: ARI {ari} at p={p}", spec.name);
            let exact = SparkDbscan::new(params).partitions(p).exact().run(&ctx, Arc::clone(&data));
            assert!(
                core_labels_equivalent(&exact.clustering, &seq),
                "{} exact mode at p={p}",
                spec.name
            );
        }
    }
}
