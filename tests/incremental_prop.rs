//! Property test: incremental DBSCAN equals batch DBSCAN on core points
//! for arbitrary clumpy data and insertion orders.

use proptest::prelude::*;
use scalable_dbscan::dbscan::{
    core_labels_equivalent, DbscanParams, IncrementalDbscan, SequentialDbscan,
};
use scalable_dbscan::prelude::*;
use std::sync::Arc;

fn arb_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..4, prop::collection::vec((0usize..4, -1.0f64..1.0, -1.0f64..1.0), 8..100)).prop_map(
        |(k, pts)| {
            let centers = [(0.0, 0.0), (8.0, 0.0), (0.0, 8.0), (8.0, 8.0)];
            pts.into_iter()
                .map(|(c, dx, dy)| {
                    let (cx, cy) = centers[c % k];
                    vec![cx + dx, cy + dy]
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_equals_batch(
        rows in arb_rows(),
        eps in 0.3f64..2.5,
        min_pts in 2usize..6,
        rotate in 0usize..50,
    ) {
        let params = DbscanParams::new(eps, min_pts).unwrap();
        // arbitrary insertion order: rotate the row list
        let r = rotate % rows.len();
        let order: Vec<Vec<f64>> =
            rows[r..].iter().chain(rows[..r].iter()).cloned().collect();

        let mut inc = IncrementalDbscan::new(params, 2);
        for row in &order {
            inc.insert(row);
        }
        let incremental = inc.clustering();
        let batch = SequentialDbscan::new(params)
            .run(Arc::new(Dataset::from_rows(order)));
        prop_assert!(
            core_labels_equivalent(&incremental, &batch),
            "inc: {} clusters {} noise, batch: {} clusters {} noise",
            incremental.num_clusters(), incremental.noise_count(),
            batch.num_clusters(), batch.noise_count()
        );
        prop_assert_eq!(incremental.noise_count(), batch.noise_count());
    }

    #[test]
    fn prefix_consistency(
        rows in arb_rows(),
        eps in 0.3f64..2.0,
        min_pts in 2usize..5,
    ) {
        // after EVERY prefix of insertions the incremental state must
        // match a batch run over that prefix (sampled every 10 inserts
        // to keep runtime sane)
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let mut inc = IncrementalDbscan::new(params, 2);
        for (i, row) in rows.iter().enumerate() {
            inc.insert(row);
            if i % 10 == 9 || i + 1 == rows.len() {
                let batch = SequentialDbscan::new(params)
                    .run(Arc::new(Dataset::from_rows(rows[..=i].to_vec())));
                prop_assert!(
                    core_labels_equivalent(&inc.clustering(), &batch),
                    "diverged after {} inserts",
                    i + 1
                );
            }
        }
    }
}

/// Named deterministic version of the shrunken counterexample in
/// `tests/incremental_prop.proptest-regressions` — see DESIGN.md
/// "Testing strategy" for the promotion policy.
mod regressions {
    use super::*;

    /// cc 59b107de: 20 points, a borderline blob around (8, 0) built up
    /// point by point amid noise — historically diverged from batch on
    /// an intermediate prefix where a point's core status flipped late.
    #[test]
    fn regression_59b107de_core_status_flips_mid_prefix() {
        let rows = vec![
            vec![8.0, 0.9030860180345589],
            vec![8.139128119598077, 0.46305306742023816],
            vec![0.0, 0.0],
            vec![7.812358465760733, -0.6077885827742343],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![7.685098821226321, -0.08138483371984385],
            vec![8.568419982688718, 0.17962054391692195],
            vec![7.243812421121554, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![7.9029074330852485, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
        ];
        let params = DbscanParams::new(0.602032779921223, 4).unwrap();

        // prefix_consistency on the literal input: check EVERY prefix
        // (20 points is cheap), not just every tenth
        let mut inc = IncrementalDbscan::new(params, 2);
        for (i, row) in rows.iter().enumerate() {
            inc.insert(row);
            let batch = SequentialDbscan::new(params)
                .run(Arc::new(Dataset::from_rows(rows[..=i].to_vec())));
            assert!(
                core_labels_equivalent(&inc.clustering(), &batch),
                "diverged after {} inserts",
                i + 1
            );
            assert_eq!(inc.clustering().noise_count(), batch.noise_count(), "prefix {}", i + 1);
        }

        // incremental_equals_batch on the full input (identity order)
        let full = SequentialDbscan::new(params).run(Arc::new(Dataset::from_rows(rows)));
        assert!(core_labels_equivalent(&inc.clustering(), &full));
        assert_eq!(inc.clustering().noise_count(), full.noise_count());
    }
}
