//! Integration checks on the virtual-cluster time model and the figure
//! runners: the structural properties the paper's curves rely on must
//! hold on real measured task times.

use dbscan_bench::{driver_time, executor_time, fig8_series, run_spark_at, RunOptions};
use dbscan_datagen::StandardDataset;
use scalable_dbscan::prelude::*;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn simulated_executor_time_is_monotone_in_cores() {
    let spec = StandardDataset::R10k.scaled_spec(16);
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).unwrap();
    let r = run_spark_at(&data, params, 16, RunOptions::default());
    let mut prev = Duration::MAX;
    for p in [1, 2, 4, 8, 16] {
        let t = executor_time(&r, p);
        assert!(t <= prev, "makespan rose from {prev:?} to {t:?} at p={p}");
        prev = t;
    }
    // with one executor the makespan is the total work
    assert_eq!(executor_time(&r, 1), r.job.executor_busy());
}

#[test]
fn fig8_speedup_is_sane() {
    let spec = StandardDataset::C10k.scaled_spec(16);
    let series = fig8_series(&spec, &[2, 4, 8], RunOptions::default());
    for p in &series {
        assert!(p.speedup_executor > 0.5, "cores={} speedup {}", p.cores, p.speedup_executor);
        assert!(
            p.speedup_executor <= p.cores as f64 * 1.5,
            "superlinear beyond noise: {} at {} cores",
            p.speedup_executor,
            p.cores
        );
    }
    assert!(series[2].speedup_executor > series[0].speedup_executor);
}

#[test]
fn driver_time_grows_with_partition_count() {
    // Fig. 6's observation: more partitions -> more partial clusters ->
    // more merge work in the driver (asserted on counts, since the
    // single-core timing of microsecond merges is noisy)
    let spec = StandardDataset::R10k.scaled_spec(8);
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).unwrap();
    let few = run_spark_at(&data, params, 2, RunOptions::default());
    let many = run_spark_at(&data, params, 32, RunOptions::default());
    assert!(many.num_partial_clusters > few.num_partial_clusters);
    assert!(many.merge_ops >= few.merge_ops);
    assert!(driver_time(&few) > Duration::ZERO);
}

#[test]
fn r1m_options_filter_and_prune() {
    let spec = StandardDataset::R1m.scaled_spec(64); // 16k points
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).unwrap();
    let plain = run_spark_at(&data, params, 8, RunOptions::default());
    let r1m = run_spark_at(&data, params, 8, RunOptions::r1m());
    // pruning caps neighborhoods; filtering drops tiny partials
    assert!(r1m.num_partial_clusters <= plain.num_partial_clusters + r1m.filtered_partials);
    // accuracy must not collapse: compare against sequential by ARI
    let seq = scalable_dbscan::dbscan::SequentialDbscan::new(params).run(Arc::clone(&data));
    let ari = scalable_dbscan::dbscan::adjusted_rand_index(&r1m.clustering, &seq);
    assert!(ari > 0.8, "r1m-mode accuracy collapsed: ARI {ari}");
}
