//! Property tests: the hardened partitioned DBSCAN is equivalent to
//! sequential DBSCAN on core points for *arbitrary* data, parameters
//! and partition counts; the paper-literal configuration is equivalent
//! whenever clusters span at most two partitions and close to it
//! otherwise (checked via ARI).

use proptest::prelude::*;
use scalable_dbscan::dbscan::{
    core_labels_equivalent, DbscanParams, SequentialDbscan, SparkDbscan,
};
use scalable_dbscan::prelude::*;
use std::sync::Arc;

fn arb_dataset() -> impl Strategy<Value = Vec<Vec<f64>>> {
    // clumpy data: a few attractor centers plus jitter, so interesting
    // cluster structure actually arises
    (2usize..5, prop::collection::vec((0usize..4, -1.0f64..1.0, -1.0f64..1.0), 10..160)).prop_map(
        |(k, pts)| {
            let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)];
            pts.into_iter()
                .map(|(c, dx, dy)| {
                    let (cx, cy) = centers[c % k];
                    vec![cx + dx, cy + dy]
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_mode_always_matches_sequential(
        rows in arb_dataset(),
        eps in 0.2f64..3.0,
        min_pts in 2usize..6,
        partitions in 1usize..9,
    ) {
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let seq = SequentialDbscan::new(params).run(Arc::clone(&data));
        let ctx = Context::new(ClusterConfig::local(2));
        let par = SparkDbscan::new(params)
            .partitions(partitions)
            .exact()
            .run(&ctx, data);
        prop_assert!(
            core_labels_equivalent(&par.clustering, &seq),
            "eps={eps} min_pts={min_pts} p={partitions}: {} vs {} clusters",
            par.clustering.num_clusters(),
            seq.num_clusters()
        );
        prop_assert_eq!(par.clustering.noise_count(), seq.noise_count());
        prop_assert_eq!(par.shuffle_records, 0u64);
    }

    #[test]
    fn paper_mode_is_close_for_any_partition_count(
        rows in arb_dataset(),
        eps in 0.2f64..2.0,
        min_pts in 2usize..5,
        partitions in 2usize..9,
    ) {
        // the literal one-seed-per-partition rule is a heuristic: its
        // single SEED can land on a foreign *noise* point and miss the
        // real connection (one reason the reproduction grades the
        // paper's soundness low) — so we bound the damage instead of
        // asserting exactness
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let seq = SequentialDbscan::new(params).run(Arc::clone(&data));
        let ctx = Context::new(ClusterConfig::local(2));
        let par = SparkDbscan::new(params).partitions(partitions).run(&ctx, data);
        // provable invariants of the heuristic:
        // 1. it can split but never merge distinct true clusters
        prop_assert!(par.clustering.num_clusters() >= seq.num_clusters());
        // 2. every core point stays clustered (cores found locally)
        for i in 0..par.clustering.len() {
            if par.clustering.core[i] {
                prop_assert!(par.clustering.labels[i].is_cluster());
            }
        }
        // 3. it can only add noise (dropped borders), never remove it
        prop_assert!(par.clustering.noise_count() >= seq.noise_count());
        // (no ARI floor here: on adversarial shrunken inputs a single
        // missed merge can halve the only cluster and ARI with it — the
        // quality claim on realistic data lives in tests/end_to_end.rs)
    }

    #[test]
    fn partitioning_never_changes_core_points(
        rows in arb_dataset(),
        eps in 0.2f64..3.0,
        min_pts in 2usize..6,
        partitions in 1usize..9,
    ) {
        // core status is computed on the broadcast kd-tree over the full
        // dataset, so it must be identical no matter the partitioning
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let seq = SequentialDbscan::new(params).run(Arc::clone(&data));
        let ctx = Context::new(ClusterConfig::local(2));
        let par = SparkDbscan::new(params).partitions(partitions).run(&ctx, data);
        prop_assert_eq!(par.clustering.core, seq.core);
    }
}
