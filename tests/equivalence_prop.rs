//! Property tests: the hardened partitioned DBSCAN is equivalent to
//! sequential DBSCAN on core points for *arbitrary* data, parameters
//! and partition counts; the paper-literal configuration is equivalent
//! whenever clusters span at most two partitions and close to it
//! otherwise (checked via ARI).

use proptest::prelude::*;
use scalable_dbscan::dbscan::{
    core_labels_equivalent, DbscanParams, SequentialDbscan, SparkDbscan,
};
use scalable_dbscan::prelude::*;
use std::sync::Arc;

fn arb_dataset() -> impl Strategy<Value = Vec<Vec<f64>>> {
    // clumpy data: a few attractor centers plus jitter, so interesting
    // cluster structure actually arises
    (2usize..5, prop::collection::vec((0usize..4, -1.0f64..1.0, -1.0f64..1.0), 10..160)).prop_map(
        |(k, pts)| {
            let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)];
            pts.into_iter()
                .map(|(c, dx, dy)| {
                    let (cx, cy) = centers[c % k];
                    vec![cx + dx, cy + dy]
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_mode_always_matches_sequential(
        rows in arb_dataset(),
        eps in 0.2f64..3.0,
        min_pts in 2usize..6,
        partitions in 1usize..9,
    ) {
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let seq = SequentialDbscan::new(params).run(Arc::clone(&data));
        let ctx = Context::new(ClusterConfig::local(2));
        let par = SparkDbscan::new(params)
            .partitions(partitions)
            .exact()
            .run(&ctx, data);
        prop_assert!(
            core_labels_equivalent(&par.clustering, &seq),
            "eps={eps} min_pts={min_pts} p={partitions}: {} vs {} clusters",
            par.clustering.num_clusters(),
            seq.num_clusters()
        );
        prop_assert_eq!(par.clustering.noise_count(), seq.noise_count());
        prop_assert_eq!(par.shuffle_records, 0u64);
    }

    #[test]
    fn paper_mode_is_close_for_any_partition_count(
        rows in arb_dataset(),
        eps in 0.2f64..2.0,
        min_pts in 2usize..5,
        partitions in 2usize..9,
    ) {
        // the literal one-seed-per-partition rule is a heuristic: its
        // single SEED can land on a foreign *noise* point and miss the
        // real connection (one reason the reproduction grades the
        // paper's soundness low) — so we bound the damage instead of
        // asserting exactness
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let seq = SequentialDbscan::new(params).run(Arc::clone(&data));
        let ctx = Context::new(ClusterConfig::local(2));
        let par = SparkDbscan::new(params).partitions(partitions).run(&ctx, data);
        // provable invariants of the heuristic:
        // 1. it can split but never merge distinct true clusters
        prop_assert!(par.clustering.num_clusters() >= seq.num_clusters());
        // 2. every core point stays clustered (cores found locally)
        for i in 0..par.clustering.len() {
            if par.clustering.core[i] {
                prop_assert!(par.clustering.labels[i].is_cluster());
            }
        }
        // 3. it can only add noise (dropped borders), never remove it
        prop_assert!(par.clustering.noise_count() >= seq.noise_count());
        // (no ARI floor here: on adversarial shrunken inputs a single
        // missed merge can halve the only cluster and ARI with it — the
        // quality claim on realistic data lives in tests/end_to_end.rs)
    }

    #[test]
    fn partitioning_never_changes_core_points(
        rows in arb_dataset(),
        eps in 0.2f64..3.0,
        min_pts in 2usize..6,
        partitions in 1usize..9,
    ) {
        // core status is computed on the broadcast kd-tree over the full
        // dataset, so it must be identical no matter the partitioning
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let seq = SequentialDbscan::new(params).run(Arc::clone(&data));
        let ctx = Context::new(ClusterConfig::local(2));
        let par = SparkDbscan::new(params).partitions(partitions).run(&ctx, data);
        prop_assert_eq!(par.clustering.core, seq.core);
    }
}

/// Named deterministic versions of the shrunken counterexamples in
/// `tests/equivalence_prop.proptest-regressions`.
///
/// Policy (see DESIGN.md "Testing strategy"): every counterexample
/// proptest persists is promoted to a named `#[test]` on its literal
/// shrunken input, so the case survives even if the regression file is
/// pruned, runs under plain `cargo test` filters, and carries a name
/// that says what it once broke. The persistence file stays checked in
/// too — proptest replays it before generating novel cases.
mod regressions {
    use super::*;

    /// Run one literal input through every property in this file.
    fn check(rows: Vec<Vec<f64>>, eps: f64, min_pts: usize, partitions: usize) {
        let data = Arc::new(Dataset::from_rows(rows));
        let params = DbscanParams::new(eps, min_pts).unwrap();
        let seq = SequentialDbscan::new(params).run(Arc::clone(&data));
        let ctx = Context::new(ClusterConfig::local(2));

        // exact_mode_always_matches_sequential
        let exact =
            SparkDbscan::new(params).partitions(partitions).exact().run(&ctx, Arc::clone(&data));
        assert!(
            core_labels_equivalent(&exact.clustering, &seq),
            "exact mode: {} vs {} clusters",
            exact.clustering.num_clusters(),
            seq.num_clusters()
        );
        assert_eq!(exact.clustering.noise_count(), seq.noise_count());
        assert_eq!(exact.shuffle_records, 0u64);

        // paper_mode_is_close_for_any_partition_count (heuristic bounds)
        // + partitioning_never_changes_core_points
        let paper = SparkDbscan::new(params).partitions(partitions).run(&ctx, data);
        assert!(paper.clustering.num_clusters() >= seq.num_clusters());
        for i in 0..paper.clustering.len() {
            if paper.clustering.core[i] {
                assert!(paper.clustering.labels[i].is_cluster(), "clustered core {i}");
            }
        }
        assert!(paper.clustering.noise_count() >= seq.noise_count());
        assert_eq!(paper.clustering.core, seq.core);
    }

    /// cc 20d5425b: 27 points, two tight blobs plus scattered jitter,
    /// four partitions — historically tripped the single-SEED heuristic
    /// when its one seed landed on a foreign noise point.
    #[test]
    fn regression_20d5425b_seed_on_foreign_noise_point() {
        let rows = vec![
            vec![10.0, -0.2850782337097511],
            vec![0.0, 10.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![-0.041444441218034415, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![10.268989552694892, 0.506355330074332],
            vec![10.0, 0.720588168561722],
            vec![9.889513524327018, 0.6534951939783447],
            vec![0.0, 0.9539137294501702],
            vec![10.644800005765397, 0.8135421299999321],
            vec![10.0, 0.1360880687228832],
            vec![10.0, 0.0],
            vec![0.0, 0.0],
            vec![10.41723435473722, -0.46213903453233196],
            vec![0.9186153285570567, 0.0],
            vec![0.0, 10.0],
            vec![0.0, 10.0],
            vec![0.5025936042084814, 9.464398111712613],
            vec![0.0, -0.7349210206880596],
            vec![10.522870414053097, -0.960817477270511],
            vec![0.8142190649641046, 0.0],
            vec![10.057122293751208, -0.17243763953864563],
            vec![0.0, 0.0],
        ];
        check(rows, 0.5719099935266885, 4, 4);
    }

    /// cc 68823134: one blob of nine near-duplicates plus an isolated
    /// point, min_pts at the blob-size edge — a borderline-core case.
    #[test]
    fn regression_68823134_borderline_core_blob() {
        let rows = vec![
            vec![10.0, 0.20855521032469343],
            vec![10.317347808802843, 0.25521174531242363],
            vec![10.0, -0.11788590702232724],
            vec![9.487243436843926, 0.0],
            vec![10.0, 0.1746286932327519],
            vec![9.509521074049541, 0.0],
            vec![10.0, 0.44060099468500735],
            vec![10.0, -0.5963605119230624],
            vec![9.676793801746774, -0.27589836019078046],
            vec![0.0, 0.0],
        ];
        check(rows, 0.4680977845584666, 5, 2);
    }

    /// cc 5e81629f: two small far-apart groups with a tiny eps, so the
    /// lower group is all noise while the upper one barely clusters.
    #[test]
    fn regression_5e81629f_sparse_group_all_noise() {
        let rows = vec![
            vec![-0.367568148509745, 10.647586815107566],
            vec![0.0, 0.0],
            vec![-0.7722293898595615, 10.624562294685532],
            vec![-0.3170553334522932, 10.974557983501958],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.5068917624335951],
            vec![0.0, -0.6891592066935873],
            vec![-0.5117484259762696, 10.774599476761976],
            vec![0.0, -0.8584529199867934],
        ];
        check(rows, 0.33271281245546924, 4, 2);
    }
}
