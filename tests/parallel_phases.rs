//! Thread-count invariance of the parallelized driver phases (PR 6).
//!
//! The parallel kd-tree bulk-build and the parallel Algorithm-4 merge
//! both promise **byte identity** with their sequential counterparts:
//! threads may only change wall-clock time, never a node, an edge, or a
//! label. These tests pin that contract at three levels — the raw tree,
//! the raw merge, and the full `SparkDbscan` pipeline.

use scalable_dbscan::datagen::StandardDataset;
use scalable_dbscan::dbscan::{
    local_partial_clusters, merge_partial_clusters_threaded, DbscanParams, MergeStrategy,
    PartitionRanges, SeedPolicy, SparkDbscan,
};
use scalable_dbscan::prelude::*;
use scalable_dbscan::spatial::{BkdTree, Metric, SpatialIndex};
use std::sync::Arc;

/// Small cutoff/bucket so even these debug-sized datasets decompose
/// into many shards and several fork levels.
fn small_cfg(threads: usize) -> BuildConfig {
    BuildConfig::default().with_threads(threads).with_bucket_size(8).with_par_cutoff(64)
}

fn dataset(seed_scale: u32) -> (Arc<Dataset>, DbscanParams) {
    let mut spec = StandardDataset::C10k.scaled_spec(8); // 1250 points
    spec.params.seed = 7000 + seed_scale as u64;
    let (data, _) = spec.generate();
    (Arc::new(data), DbscanParams::new(spec.eps, spec.min_pts).unwrap())
}

#[test]
fn parallel_build_is_byte_identical_across_thread_counts() {
    for trial in 0..4 {
        let (data, params) = dataset(trial);
        let serial = BkdTree::build_with_config(Arc::clone(&data), Metric::Euclidean, small_cfg(1));
        for threads in [2, 3, 8] {
            let par = BkdTree::build_with_config(
                Arc::clone(&data),
                Metric::Euclidean,
                small_cfg(threads),
            );
            assert!(
                serial.same_structure(&par),
                "trial {trial}: {threads}-thread build diverged from sequential"
            );
            // and the trees answer queries identically (sorted: query
            // order within a leaf is an implementation detail)
            for q in (0..data.len()).step_by(97) {
                let mut a = serial.range(data.row(q), params.eps);
                let mut b = par.range(data.row(q), params.eps);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "trial {trial}: query {q} diverged at {threads} threads");
            }
        }
    }
}

/// Build real partial clusters (Algorithms 2+3 over a broadcast-style
/// kd-tree) and check the parallel union-find merge replays the serial
/// one exactly — labels, cluster count, and merge-op count.
#[test]
fn parallel_merge_is_byte_identical_on_real_partials() {
    for (trial, policy) in
        [SeedPolicy::OnePerPartition, SeedPolicy::PerBoundaryEdge].into_iter().enumerate()
    {
        let (data, params) = dataset(trial as u32);
        let n = data.len();
        let tree = BkdTree::build(Arc::clone(&data));
        let ranges = PartitionRanges::new(n, 6);

        let mut partials = Vec::new();
        let mut core = vec![false; n];
        for p in 0..ranges.num_partitions() {
            let local = local_partial_clusters(
                |i, out| tree.range_into(data.row(i as usize), params.eps, out),
                params,
                &ranges,
                p,
                policy,
            );
            partials.extend(local.clusters);
            for c in local.core_points {
                core[c as usize] = true;
            }
        }

        let serial =
            merge_partial_clusters_threaded(n, &partials, MergeStrategy::UnionFind, &core, 1);
        for threads in [2, 8] {
            let par = merge_partial_clusters_threaded(
                n,
                &partials,
                MergeStrategy::UnionFind,
                &core,
                threads,
            );
            assert_eq!(
                serial.clustering.labels, par.clustering.labels,
                "{policy:?}: labels diverged at {threads} threads"
            );
            assert_eq!(serial.merged_clusters, par.merged_clusters);
            assert_eq!(serial.merge_ops, par.merge_ops);
        }
    }
}

/// The whole pipeline — parallel build, overlapped collection, parallel
/// merge — returns the same bytes at every thread combination.
#[test]
fn spark_dbscan_output_is_thread_count_invariant() {
    let (data, params) = dataset(99);
    let run = |build_threads: usize, merge_threads: usize| {
        let ctx = Context::new(ClusterConfig::local(4));
        SparkDbscan::new(params)
            .partitions(5)
            .build_config(small_cfg(build_threads))
            .merge_threads(merge_threads)
            .run(&ctx, Arc::clone(&data))
    };
    let base = run(1, 1);
    for (bt, mt) in [(1, 8), (8, 1), (2, 2), (8, 8)] {
        let r = run(bt, mt);
        assert_eq!(
            base.clustering.labels, r.clustering.labels,
            "labels diverged at build={bt} merge={mt}"
        );
        assert_eq!(base.num_partial_clusters, r.num_partial_clusters);
        assert_eq!(base.merge_ops, r.merge_ops);
        assert_eq!(
            base.build.shards.iter().map(|s| (s.offset, s.len)).collect::<Vec<_>>(),
            r.build.shards.iter().map(|s| (s.offset, s.len)).collect::<Vec<_>>(),
            "shard decomposition must not depend on thread count"
        );
    }
}
