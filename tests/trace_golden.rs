//! Golden trace determinism: the whole point of virtual timestamps is
//! that a seeded workload yields a byte-identical trace on every run,
//! no matter how the OS schedules the worker threads — even when fault
//! injection forces task retries.

use scalable_dbscan::dbscan::ShuffleDbscan;
use scalable_dbscan::engine::{
    chrome_trace_json, validate_chrome_trace, EventKind, FaultConfig, FaultPlan, FaultRule, Trace,
};
use scalable_dbscan::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// One fresh context + traced 2-partition run with every task's first
/// attempt failing (injected), retried to success.
fn traced_run() -> Trace {
    let spec = StandardDataset::C10k.scaled_spec(64);
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).unwrap();
    let cfg = ClusterConfig::local(2)
        .with_tracing()
        .with_fault(FaultConfig::always_first(1))
        .with_max_attempts(3);
    let ctx = Context::new(cfg);
    let r = SparkDbscan::new(params).partitions(2).run(&ctx, Arc::clone(&data));
    assert!(r.job.failed_attempts() > 0, "fault injection must have fired");
    ctx.trace().snapshot()
}

#[test]
fn trace_is_byte_identical_across_runs() {
    let a = traced_run();
    let b = traced_run();
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "snapshots must match event for event");
    assert_eq!(chrome_trace_json(&a), chrome_trace_json(&b), "exports must match byte for byte");
}

#[test]
fn golden_trace_structure() {
    let t = traced_run();
    assert_eq!(t.dropped, 0, "workload must fit the default ring");

    // virtual timestamps never go backwards in canonical order per lane:
    // driver events are globally ordered by the driver clock
    let driver_ts: Vec<u64> = t.events.iter().filter(|e| e.scope.is_none()).map(|e| e.vt).collect();
    assert!(driver_ts.windows(2).all(|w| w[0] < w[1]), "driver clock strictly increases");

    // every partition's first attempt failed (injected) and was retried
    for part in 0..2usize {
        let failed = t.events.iter().any(|e| {
            matches!(e.kind, EventKind::TaskFailure { injected: true })
                && e.scope.is_some_and(|s| s.partition == part && s.attempt == 0)
        });
        let succeeded = t.events.iter().any(|e| {
            matches!(e.kind, EventKind::TaskSuccess)
                && e.scope.is_some_and(|s| s.partition == part && s.attempt == 1)
        });
        assert!(failed, "partition {part}: attempt 0 must fail (injected)");
        assert!(succeeded, "partition {part}: attempt 1 must succeed");
    }

    // the export round-trips the validator with monotone timestamps
    let summary = validate_chrome_trace(&chrome_trace_json(&t)).expect("valid chrome trace");
    assert!(summary.events > 0);
    for cat in ["job", "stage", "task", "broadcast", "phase"] {
        assert!(summary.count(cat) > 0, "missing {cat} events");
    }
}

/// One fresh traced exact-mode run at the given build/merge thread
/// count, with a cutoff small enough that the build really decomposes
/// into several shards (and so emits several `BuildShard` events).
fn traced_threaded_run(threads: usize) -> Trace {
    let spec = StandardDataset::C10k.scaled_spec(64);
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).unwrap();
    let ctx = Context::new(ClusterConfig::local(2).with_tracing());
    let r = SparkDbscan::new(params)
        .partitions(2)
        .exact()
        .build_config(BuildConfig::default().with_threads(threads).with_par_cutoff(64))
        .merge_threads(threads)
        .run(&ctx, Arc::clone(&data));
    assert!(r.build.shards.len() > 1, "cutoff must force a multi-shard build");
    ctx.trace().snapshot()
}

#[test]
fn trace_is_byte_identical_across_thread_counts() {
    // worker count is a pure performance knob: the shard decomposition,
    // the merge sub-phases and every virtual timestamp must come out
    // the same whether the driver phases fork or not
    let serial = traced_threaded_run(1);
    for threads in [2, 8] {
        let par = traced_threaded_run(threads);
        assert_eq!(
            format!("{serial:?}"),
            format!("{par:?}"),
            "{threads}-thread snapshot differs from sequential"
        );
        assert_eq!(
            chrome_trace_json(&serial),
            chrome_trace_json(&par),
            "{threads}-thread export differs from sequential"
        );
    }
    // the parallelized phases actually show up in the export
    let json = chrome_trace_json(&serial);
    for needle in ["merge_extract", "merge_union", "build shard"] {
        assert!(json.contains(needle), "trace export must contain {needle:?} events");
    }
}

/// One fresh context + traced shuffle-baseline run where the first
/// fetch of every reduce task fails (injected), marking a map output
/// lost and forcing lineage recomputation of exactly that output.
fn traced_fetch_failure_run() -> (Trace, Vec<Label>) {
    let spec = StandardDataset::C10k.scaled_spec(64);
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).unwrap();
    let cfg = ClusterConfig::local(2)
        .with_tracing()
        .with_fault(FaultPlan::none().with_fetch_failures(FaultRule::always_first(1)))
        .with_max_attempts(4)
        .with_seed(42);
    let ctx = Context::new(cfg);
    let r = ShuffleDbscan::new(params).partitions(2).run(&ctx, Arc::clone(&data)).unwrap();
    (ctx.trace().snapshot(), r.clustering.canonicalize().labels)
}

#[test]
fn fetch_failure_recovery_trace_is_byte_identical_across_runs() {
    let (ta, la) = traced_fetch_failure_run();
    let (tb, lb) = traced_fetch_failure_run();
    assert_eq!(la, lb, "recovered clustering must be deterministic");
    assert_eq!(format!("{ta:?}"), format!("{tb:?}"), "recovery trace snapshots must match");
    assert_eq!(
        chrome_trace_json(&ta),
        chrome_trace_json(&tb),
        "recovery trace exports must match byte for byte"
    );
}

#[test]
fn fetch_failure_recovery_trace_structure() {
    let (t, labels) = traced_fetch_failure_run();

    // fault injection must not change the answer: same clustering as a
    // clean run of the same workload
    let spec = StandardDataset::C10k.scaled_spec(64);
    let (data, _) = spec.generate();
    let params = DbscanParams::new(spec.eps, spec.min_pts).unwrap();
    let clean_ctx = Context::new(ClusterConfig::local(2));
    let clean = ShuffleDbscan::new(params).partitions(2).run(&clean_ctx, Arc::new(data)).unwrap();
    assert_eq!(labels, clean.clustering.canonicalize().labels);

    // lineage recomputation is surgical: the set of recomputed map
    // partitions equals the set marked lost — nothing more recomputed,
    // nothing lost left behind
    let lost: HashSet<(usize, usize)> = t
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::MapOutputLost { shuffle, partition } => Some((shuffle, partition)),
            _ => None,
        })
        .collect();
    let recomputed: HashSet<(usize, usize)> = t
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::MapOutputRecomputed { shuffle, partition } => Some((shuffle, partition)),
            _ => None,
        })
        .collect();
    assert!(!lost.is_empty(), "fetch faults must have marked map outputs lost");
    assert_eq!(lost, recomputed, "exactly the lost outputs are recomputed");

    // the driver recorded the recovery round with its virtual-time
    // backoff, and the export carries the recovery category
    assert!(
        t.events.iter().any(
            |e| matches!(e.kind, EventKind::StageRetry { backoff_ticks, .. } if backoff_ticks > 0)
        ),
        "stage retry with backoff must be traced"
    );
    let summary = validate_chrome_trace(&chrome_trace_json(&t)).expect("valid chrome trace");
    assert!(summary.count("recovery") > 0, "recovery events must export");
}
