//! Golden trace determinism: the whole point of virtual timestamps is
//! that a seeded workload yields a byte-identical trace on every run,
//! no matter how the OS schedules the worker threads — even when fault
//! injection forces task retries.

use scalable_dbscan::engine::{
    chrome_trace_json, validate_chrome_trace, EventKind, FaultConfig, Trace,
};
use scalable_dbscan::prelude::*;
use std::sync::Arc;

/// One fresh context + traced 2-partition run with every task's first
/// attempt failing (injected), retried to success.
fn traced_run() -> Trace {
    let spec = StandardDataset::C10k.scaled_spec(64);
    let (data, _) = spec.generate();
    let data = Arc::new(data);
    let params = DbscanParams::new(spec.eps, spec.min_pts).unwrap();
    let cfg = ClusterConfig::local(2)
        .with_tracing()
        .with_fault(FaultConfig::always_first(1))
        .with_max_attempts(3);
    let ctx = Context::new(cfg);
    let r = SparkDbscan::new(params).partitions(2).run(&ctx, Arc::clone(&data));
    assert!(r.job.failed_attempts() > 0, "fault injection must have fired");
    ctx.trace().snapshot()
}

#[test]
fn trace_is_byte_identical_across_runs() {
    let a = traced_run();
    let b = traced_run();
    assert_eq!(format!("{a:?}"), format!("{b:?}"), "snapshots must match event for event");
    assert_eq!(chrome_trace_json(&a), chrome_trace_json(&b), "exports must match byte for byte");
}

#[test]
fn golden_trace_structure() {
    let t = traced_run();
    assert_eq!(t.dropped, 0, "workload must fit the default ring");

    // virtual timestamps never go backwards in canonical order per lane:
    // driver events are globally ordered by the driver clock
    let driver_ts: Vec<u64> = t.events.iter().filter(|e| e.scope.is_none()).map(|e| e.vt).collect();
    assert!(driver_ts.windows(2).all(|w| w[0] < w[1]), "driver clock strictly increases");

    // every partition's first attempt failed (injected) and was retried
    for part in 0..2usize {
        let failed = t.events.iter().any(|e| {
            matches!(e.kind, EventKind::TaskFailure { injected: true })
                && e.scope.is_some_and(|s| s.partition == part && s.attempt == 0)
        });
        let succeeded = t.events.iter().any(|e| {
            matches!(e.kind, EventKind::TaskSuccess)
                && e.scope.is_some_and(|s| s.partition == part && s.attempt == 1)
        });
        assert!(failed, "partition {part}: attempt 0 must fail (injected)");
        assert!(succeeded, "partition {part}: attempt 1 must succeed");
    }

    // the export round-trips the validator with monotone timestamps
    let summary = validate_chrome_trace(&chrome_trace_json(&t)).expect("valid chrome trace");
    assert!(summary.events > 0);
    for cat in ["job", "stage", "task", "broadcast", "phase"] {
        assert!(summary.count(cat) > 0, "missing {cat} events");
    }
}
