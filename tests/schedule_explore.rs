//! End-to-end schedule-space exploration (ISSUE 8 acceptance tests).
//!
//! * The paper's algorithm must produce byte-identical labels under
//!   every task interleaving, including under fault plans that retry
//!   tasks and kill executors mid-stage — explored here with seeded
//!   schedules over two fault plans.
//! * A deliberately order-sensitive job must be *caught* by the
//!   `label-identity` oracle and its failing schedule shrunk to a short
//!   replayable token.
//!
//! The full 256-seed campaign runs in release mode via the
//! `schedule_fuzz` bench bin; these tests keep debug-mode counts small.

use scalable_dbscan::dbscan::DbscanExploreJob;
use scalable_dbscan::engine::{
    Context, ExecutorKillAt, Explorer, FaultPlan, FaultRule, JobArtifacts, Replay, ReplayToken,
    SparkResult,
};
use scalable_dbscan::prelude::*;
use std::sync::Arc;

const PARTITIONS: usize = 4;

fn blobs() -> Arc<Dataset> {
    let mut rows = Vec::new();
    for c in 0..3 {
        for i in 0..30 {
            rows.push(vec![c as f64 * 100.0 + i as f64 * 0.01, (i % 5) as f64 * 0.01]);
        }
    }
    Arc::new(Dataset::from_rows(rows))
}

fn params() -> DbscanParams {
    DbscanParams::new(0.5, 4).unwrap()
}

fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "task-failures",
            FaultPlan::none()
                .with_task_failures(FaultRule::with_prob(1.0, 2))
                .with_stragglers(FaultRule::with_prob(0.3, 1), 2),
        ),
        (
            "executor-kill",
            FaultPlan::none()
                .with_task_failures(FaultRule::with_prob(0.3, 1))
                .with_executor_kill(ExecutorKillAt { stage: 1, executor: 0, after_tasks: 1 })
                .with_executor_kill(ExecutorKillAt { stage: 3, executor: 1, after_tasks: 1 }),
        ),
    ]
}

fn cluster_with(plan: FaultPlan) -> ClusterConfig {
    ClusterConfig::local(PARTITIONS).with_fault(plan).with_max_attempts(6)
}

#[test]
fn spark_dbscan_is_schedule_independent_under_fault_plans() {
    let job = DbscanExploreJob::new(blobs(), params(), PARTITIONS);
    for (name, plan) in fault_plans() {
        let report = Explorer::new(cluster_with(plan))
            .with_schedules(6)
            .with_seed0(100)
            .explore_or_panic(&job);
        assert_eq!(report.schedules_run, 6, "plan {name}");
        assert!(report.ok());
    }
}

#[test]
fn speculative_clone_races_are_schedule_independent() {
    // with speculation on, the explorer eagerly clones a deterministic
    // quarter of submissions and surfaces a `SpeculativeCommit` decision
    // point, so seeded schedules race both twins in either commit order
    // — labels, merge-once effects and the memory ledger must not care
    // which twin wins, even while tasks are also failing and executors
    // are being killed mid-stage
    let job = DbscanExploreJob::new(blobs(), params(), PARTITIONS);
    for (name, plan) in fault_plans() {
        let report = Explorer::new(cluster_with(plan).with_speculation(SpeculationConfig::on()))
            .with_schedules(6)
            .with_seed0(300)
            .explore_or_panic(&job);
        assert_eq!(report.schedules_run, 6, "plan {name}");
        assert!(report.ok());
    }
}

/// A job whose fingerprint depends on driver-observed completion order
/// — the class of bug the explorer exists to surface.
fn order_sensitive_job(ctx: &Context) -> SparkResult<JobArtifacts> {
    let arrivals = ctx.collection_accumulator::<u64>();
    ctx.range(0, 8, 8).foreach_partition({
        let arrivals = arrivals.clone();
        move |p, _| arrivals.add(p as u64)
    })?;
    Ok(JobArtifacts {
        fingerprint: arrivals.value().iter().flat_map(|x| x.to_le_bytes()).collect(),
        merge_once: Vec::new(),
    })
}

#[test]
fn planted_ordering_bug_is_caught_and_shrunk_to_a_replayable_token() {
    let explorer = Explorer::new(ClusterConfig::local(PARTITIONS)).with_schedules(32);
    let report = explorer.explore(&order_sensitive_job).expect("baseline must run");
    let v = report.violation.expect("the planted ordering bug must be found");

    assert_eq!(v.oracle, "label-identity", "wrong oracle fired: {}", v.report());
    assert!(
        v.shrunk.decisions() <= 20,
        "shrunk token must be short, got {} decisions: {}",
        v.shrunk.decisions(),
        v.shrunk
    );

    // the printed token round-trips and still reproduces the violation
    let reparsed: ReplayToken = v.shrunk.to_string().parse().expect("token parses back");
    assert_eq!(reparsed, v.shrunk);
    let baseline = baseline_artifacts(&order_sensitive_job);
    assert!(
        explorer.check_token(&order_sensitive_job, &baseline, &reparsed).is_some(),
        "replaying the shrunk token must reproduce the violation: {}",
        v.report()
    );
    assert!(v.report().contains("reproduce with"), "{}", v.report());
}

/// The canonical-baseline artifacts: the job run under the empty-token
/// schedule the explorer compares everything against.
fn baseline_artifacts(job: &dyn scalable_dbscan::engine::ExploreJob) -> JobArtifacts {
    let ctx =
        Context::new(ClusterConfig::local(PARTITIONS).with_schedule(Arc::new(Replay::baseline())));
    job.run(&ctx).expect("baseline job runs")
}

#[test]
fn replaying_a_token_reproduces_the_exact_schedule() {
    // on an order-sensitive observable, the same token must reproduce
    // the same arrival order every time
    let token: ReplayToken = "sv1;k=2a;0=2,1=1,3=2".parse().unwrap();
    let run = |token: ReplayToken| {
        let cfg = ClusterConfig::local(PARTITIONS).with_schedule(Arc::new(Replay::new(token)));
        let ctx = Context::new(cfg);
        order_sensitive_job(&ctx).expect("job runs").fingerprint
    };
    let a = run(token.clone());
    let b = run(token.clone());
    assert_eq!(a, b, "replay must be deterministic");
    let baseline = run(ReplayToken::default());
    assert_ne!(a, baseline, "this token's overrides must actually reorder arrivals");
}

/// A shuffle job under exploration: keyed fetch-order permutation and
/// fetch-failure recovery must not change a canonical (sorted)
/// fingerprint.
fn shuffle_job(ctx: &Context) -> SparkResult<JobArtifacts> {
    let pairs: Vec<(u64, u64)> = (0..64).map(|i| (i % 7, i)).collect();
    let mut reduced =
        ctx.parallelize(pairs, PARTITIONS).reduce_by_key(PARTITIONS, |a, b| a + b).collect()?;
    reduced.sort_unstable();
    Ok(JobArtifacts {
        fingerprint: reduced
            .iter()
            .flat_map(|(k, v)| k.to_le_bytes().into_iter().chain(v.to_le_bytes()))
            .collect(),
        merge_once: Vec::new(),
    })
}

#[test]
fn shuffle_fetch_order_exploration_is_clean() {
    let plan = FaultPlan::none()
        .with_fetch_failures(FaultRule::always_first(1))
        .with_task_failures(FaultRule::with_prob(0.4, 1));
    let report = Explorer::new(cluster_with(plan))
        .with_schedules(8)
        .with_seed0(7)
        .explore_or_panic(&shuffle_job);
    assert!(report.ok());
    assert_eq!(report.schedules_run, 8);
}
