//! Memory-budgeted storage engine, end to end: a per-executor byte
//! budget must change *where bytes live* — evicted, spilled to disk,
//! or held back by scheduler backpressure — and never what the engine
//! computes. Labels, collected values and the event trace (modulo
//! zero-tick `MemoryAction` events) are byte-identical across budget
//! settings; the only typed failure is a single reservation larger
//! than the whole budget.

use scalable_dbscan::dbscan::SparkDbscan;
use scalable_dbscan::engine::{EventKind, MemOp, SpillStore};
use scalable_dbscan::prelude::*;
use std::sync::Arc;

const SEED: u64 = 7;

/// Small seeded workload, same recipe as the chaos harness.
fn dataset() -> (Arc<Dataset>, DbscanParams) {
    let mut spec = StandardDataset::C10k.scaled_spec(32);
    spec.params.seed = 1000 + SEED;
    let (data, _) = spec.generate();
    (Arc::new(data), DbscanParams::new(spec.eps, spec.min_pts).unwrap())
}

/// Per-lane sequence of memory actions, in trace order. Absolute
/// virtual timestamps may shift with worker-thread interleaving; the
/// per-lane *decision sequence* may not.
fn memory_actions_by_lane(
    events: &[scalable_dbscan::engine::TraceEvent],
) -> Vec<Vec<(usize, MemOp, u64)>> {
    let mut lanes: std::collections::BTreeMap<usize, Vec<(usize, MemOp, u64)>> =
        std::collections::BTreeMap::new();
    for e in events {
        if let EventKind::MemoryAction { op, lane, bytes } = e.kind {
            lanes.entry(lane).or_default().push((lane, op, bytes));
        }
    }
    lanes.into_values().collect()
}

// ---- spill tier ------------------------------------------------------

#[test]
fn spill_round_trip_is_byte_identical() {
    let store = SpillStore::new().expect("spill store");
    let payloads: Vec<Vec<u8>> = vec![
        vec![],
        vec![0u8; 1],
        (0..=255u8).collect(),
        (0..100_000u32).flat_map(|v| v.to_le_bytes()).collect(),
    ];
    let handles: Vec<_> = payloads.iter().map(|p| store.spill(p).expect("spill write")).collect();
    assert_eq!(store.len(), payloads.len());
    for (h, p) in handles.iter().zip(&payloads) {
        assert_eq!(&store.read(*h).expect("read back"), p, "read-back must be byte-identical");
        // a second read must be just as good — spill is not take()
        assert_eq!(&store.read(*h).expect("second read"), p);
    }
    for h in handles {
        store.remove(h);
    }
    assert!(store.is_empty());
}

#[test]
fn corrupted_spill_blob_is_a_typed_error() {
    let store = SpillStore::new().expect("spill store");
    let h = store.spill(b"the engine depends on these exact bytes").expect("spill write");

    // flip one payload byte behind the store's back
    let path = store.path_of(h);
    let mut bytes = std::fs::read(&path).expect("raw blob");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&path, bytes).expect("corrupt blob");

    match store.read(h) {
        Err(SpillError::Corrupt { .. }) => {}
        other => panic!("corrupted blob must surface as SpillError::Corrupt, got {other:?}"),
    }
}

// ---- eviction determinism --------------------------------------------

#[test]
fn eviction_order_is_deterministic_at_1_2_8_worker_threads() {
    // two cached RDDs per executor lane under a budget that holds only
    // one: every re-count evicts (codec-less cache) or spills
    // (spillable cache) the other. The per-lane eviction/spill decision
    // sequence is a pure function of the cache operation sequence, so
    // 1, 2 and 8 worker threads must produce identical ledgers.
    let run = |threads: usize| {
        let mut cfg = ClusterConfig::local(2)
            .with_trace(TraceConfig::enabled())
            .with_seed(SEED)
            .with_memory_budget(20_000);
        cfg.worker_threads = threads;
        let ctx = Context::new(cfg);

        let plain = ctx.parallelize((0..4000i64).collect(), 2).map(|x| x * 3).cache();
        let spillable = ctx.parallelize((0..4000i64).collect(), 2).map(|x| x + 7).cache_spillable();

        // alternate so the two RDDs keep displacing each other
        let mut sums = Vec::new();
        for _ in 0..3 {
            sums.push(plain.collect().expect("plain pass").iter().sum::<i64>());
            sums.push(spillable.collect().expect("spillable pass").iter().sum::<i64>());
        }
        let trace = ctx.trace().snapshot();
        (sums, memory_actions_by_lane(&trace.events), ctx.memory_stats())
    };

    let (sums1, lanes1, stats1) = run(1);
    let expect: i64 = (0..4000i64).map(|x| x * 3).sum();
    let expect_sp: i64 = (0..4000i64).map(|x| x + 7).sum();
    assert_eq!(sums1, vec![expect, expect_sp, expect, expect_sp, expect, expect_sp]);
    assert!(
        stats1.evictions > 0 && stats1.spilled_bytes > 0,
        "budget of one partition per lane must force both eviction and spill, got {stats1:?}"
    );
    assert!(stats1.spill_reads > 0, "spilled partitions must be read back, not recomputed");

    for threads in [2usize, 8] {
        let (sums, lanes, stats) = run(threads);
        assert_eq!(sums, sums1, "collected values differ at {threads} worker threads");
        assert_eq!(lanes, lanes1, "per-lane memory ledger differs at {threads} worker threads");
        assert_eq!(stats, stats1, "memory stats differ at {threads} worker threads");
    }
}

// ---- typed out-of-memory ---------------------------------------------

#[test]
fn single_reservation_larger_than_the_budget_is_a_typed_error() {
    let ctx = Context::new(ClusterConfig::local(2).with_seed(SEED).with_memory_budget(1_000));
    // a task declaring a working set over the whole per-executor budget
    // can never be granted — typed error, not a hang or a panic
    let r = ctx.parallelize((0..100i64).collect(), 2).mem_hints(vec![500, 2_000]).collect();
    match r {
        Err(SparkError::OutOfMemory { requested, budget, .. }) => {
            assert_eq!(requested, 2_000);
            assert_eq!(budget, 1_000);
        }
        other => panic!("want SparkError::OutOfMemory, got {other:?}"),
    }
    // crowding alone must NOT raise it: four 900-byte tasks on two
    // lanes only backpressure
    let v = ctx
        .parallelize((0..100i64).collect(), 4)
        .mem_hints(vec![900; 4])
        .collect()
        .expect("crowded but feasible job");
    assert_eq!(v.len(), 100);
}

// ---- budget identity through the DBSCAN driver -----------------------

#[test]
fn tight_budget_spark_dbscan_labels_and_trace_are_byte_identical() {
    let (data, params) = dataset();
    let partitions = 16; // 4 tasks per lane on local(4): reservations crowd

    // pin the runner's own bundle to unbounded (the CI budget matrix
    // sets DBSCAN_MEM_BUDGET, which would otherwise leak into both
    // arms via Resources::from_env): the *context* budget is the one
    // under test here
    let pinned = Resources::from_env().with_memory(MemoryBudget::UNBOUNDED);

    // reference: unbounded, traced
    let clean_ctx =
        Context::new(ClusterConfig::local(4).with_trace(TraceConfig::enabled()).with_seed(SEED));
    let reference = SparkDbscan::new(params)
        .resources(pinned)
        .exact()
        .partitions(partitions)
        .run(&clean_ctx, Arc::clone(&data));
    let clean_trace = clean_ctx.trace().snapshot();
    let unbounded_peak = clean_ctx.memory_stats().max_lane_peak;
    assert!(unbounded_peak > 0, "unbounded runs still account (hints + driver fold)");

    // budget = 25% of the unbounded per-lane peak (the acceptance
    // criterion's setting): must spill/backpressure, never fail
    let budget = unbounded_peak / 4;
    let ctx = Context::new(
        ClusterConfig::local(4)
            .with_trace(TraceConfig::enabled())
            .with_seed(SEED)
            .with_memory_budget(budget),
    );
    let out = SparkDbscan::new(params)
        .resources(pinned)
        .exact()
        .partitions(partitions)
        .run(&ctx, Arc::clone(&data));
    let trace = ctx.trace().snapshot();

    assert_eq!(
        out.clustering.canonicalize().labels,
        reference.clustering.canonicalize().labels,
        "labels must be byte-identical under a 25% budget"
    );
    assert_eq!(
        trace.without_memory().events,
        clean_trace.events,
        "budgeted trace modulo MemoryAction events must equal the unbudgeted trace"
    );
    let stats = out.memory;
    assert!(
        stats.spilled_bytes > 0 || stats.backpressure_waits > 0 || stats.evictions > 0,
        "a 25% budget must actually engage the ladder, got {stats:?}"
    );
    assert!(
        stats.max_lane_peak <= budget,
        "accounted peak {} exceeds budget {budget}",
        stats.max_lane_peak
    );
    assert!(
        trace.events.iter().any(|e| matches!(e.kind, EventKind::MemoryAction { .. })),
        "bounded runs must record MemoryAction events"
    );
    assert!(
        !clean_trace.events.iter().any(|e| matches!(e.kind, EventKind::MemoryAction { .. })),
        "unbounded runs must record none"
    );
}

#[test]
fn resources_bundle_applies_budget_through_the_runner_facade() {
    let (data, params) = dataset();

    let clean_ctx = Context::new(ClusterConfig::local(4).with_seed(SEED));
    let clean = SparkDbscan::new(params)
        .exact()
        .run(&clean_ctx, Arc::clone(&data))
        .clustering
        .canonicalize();

    // tight budget: just above one task's working-set reservation, so
    // the run crowds and the driver fold spills, but nothing is too
    // large to grant
    let max_hint = (data.len().div_ceil(4) * 48 * 5 / 4) as u64;
    let ctx = Context::new(ClusterConfig::local(4).with_seed(SEED));
    let env = RunEnv::engine(&ctx).with_resources(Resources::new().with_memory_budget(max_hint));
    let runner: Box<dyn DbscanRunner> = Box::new(SparkDbscan::new(params).exact());
    let out = runner.run_dbscan(&env, Arc::clone(&data)).expect("budgeted facade run");

    assert_eq!(out.clustering.canonicalize().labels, clean.labels);
    let stats = ctx.memory_stats();
    assert!(stats.peak_bytes > 0);
    assert_eq!(out.timings.peak_memory_bytes, stats.peak_bytes);
    assert_eq!(out.timings.spilled_bytes, stats.spilled_bytes);
    assert_eq!(out.timings.evicted_bytes, stats.evicted_bytes);
}
