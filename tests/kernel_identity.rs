//! Kernel-configuration identity, end to end: the data layout
//! (row-major scalar vs dimension-major SoA lanes), the lane width, and
//! batched frontier expansion are pure *speed* knobs — labels,
//! per-partition executor stats and the full event trace must be
//! byte-identical across every configuration at every build/worker
//! thread count. The `min_pts` early-exit fast path legitimately
//! changes the kernel counters (it scans less), so it is compared
//! modulo the zero-tick `TaskKernel` events, and those alone.

use scalable_dbscan::datagen::{SkewedGenerator, SkewedParams};
use scalable_dbscan::dbscan::{ExecutorStats, SparkDbscan};
use scalable_dbscan::engine::Trace;
use scalable_dbscan::prelude::*;
use std::sync::Arc;

const SEED: u64 = 11;
const PARTITIONS: usize = 6;

/// Seeded random workload, same recipe as the chaos harness.
fn random_dataset() -> (Arc<Dataset>, DbscanParams) {
    let mut spec = StandardDataset::C10k.scaled_spec(32);
    spec.params.seed = 1000 + SEED;
    let (data, _) = spec.generate();
    (Arc::new(data), DbscanParams::new(spec.eps, spec.min_pts).unwrap())
}

/// Hotspot-skewed workload: dense Gaussian core plus uniform
/// background, the worst case for batched expansion (huge frontiers in
/// the hotspot, tiny ones outside).
fn skewed_dataset() -> (Arc<Dataset>, DbscanParams) {
    let (data, _) = SkewedGenerator::new(SkewedParams::new(600, 3, SEED)).generate();
    (Arc::new(data), DbscanParams::new(25.0, 5).unwrap())
}

struct RunOut {
    labels: Vec<Label>,
    stats: Vec<(u32, ExecutorStats)>,
    trace: Trace,
}

fn run_config(
    data: &Arc<Dataset>,
    params: DbscanParams,
    kernel: KernelConfig,
    build_threads: usize,
    worker_threads: usize,
) -> RunOut {
    let mut cfg = ClusterConfig::local(4).with_trace(TraceConfig::enabled()).with_seed(SEED);
    cfg.worker_threads = worker_threads;
    let ctx = Context::new(cfg);
    // explicit resources: the CI kernel matrix drives these same knobs
    // through the environment, and this test must not inherit its cell
    let res = Resources::new()
        .with_build(BuildConfig::default().with_threads(build_threads).with_kernel(kernel));
    let out = SparkDbscan::new(params)
        .resources(res)
        .exact()
        .partitions(PARTITIONS)
        .run(&ctx, Arc::clone(data));
    RunOut {
        labels: out.clustering.canonicalize().labels,
        stats: out.executor_stats,
        trace: ctx.trace().snapshot(),
    }
}

#[test]
fn every_kernel_configuration_is_byte_identical_to_scalar() {
    // (kernel, build threads, worker threads): layouts, lane widths and
    // batch sizes crossed with the thread counts the satellite pins
    let arms = [
        (KernelConfig::default(), 2, 2),
        (KernelConfig::default().with_lanes(4), 8, 8),
        (KernelConfig::default().with_lanes(16), 1, 1),
        (KernelConfig::default().with_batch(1), 2, 1),
        (KernelConfig::default().with_batch(32), 1, 8),
        (KernelConfig::scalar().with_batch(7), 2, 2),
    ];
    for (name, (data, params)) in [("random", random_dataset()), ("skewed", skewed_dataset())] {
        let reference = run_config(&data, params, KernelConfig::scalar(), 1, 1);
        assert!(
            reference.labels.iter().any(|l| matches!(l, Label::Cluster(_))),
            "{name}: reference run must actually cluster something"
        );
        for (kernel, bt, wt) in arms {
            let got = run_config(&data, params, kernel, bt, wt);
            assert_eq!(
                got.labels, reference.labels,
                "{name}: labels differ for {kernel:?} build={bt} workers={wt}"
            );
            assert_eq!(
                got.stats, reference.stats,
                "{name}: executor stats differ for {kernel:?} build={bt} workers={wt}"
            );
            assert_eq!(
                got.trace.events, reference.trace.events,
                "{name}: trace differs for {kernel:?} build={bt} workers={wt}"
            );
        }
    }
}

#[test]
fn count_fast_path_matches_modulo_kernel_counters() {
    for (name, (data, params)) in [("random", random_dataset()), ("skewed", skewed_dataset())] {
        let full = run_config(&data, params, KernelConfig::default(), 2, 2);
        for kernel in [
            KernelConfig::default().with_count_fast_path(true),
            KernelConfig::default().with_batch(16).with_count_fast_path(true),
        ] {
            let fast = run_config(&data, params, kernel, 2, 2);
            assert_eq!(fast.labels, full.labels, "{name}: labels differ for {kernel:?}");
            let strip = |s: &[(u32, ExecutorStats)]| -> Vec<(u32, ExecutorStats)> {
                s.iter().map(|&(p, st)| (p, st.without_kernel())).collect()
            };
            assert_eq!(
                strip(&fast.stats),
                strip(&full.stats),
                "{name}: non-kernel stats differ for {kernel:?}"
            );
            assert_eq!(
                fast.trace.without_kernel().events,
                full.trace.without_kernel().events,
                "{name}: trace modulo TaskKernel differs for {kernel:?}"
            );
            // the fast path must actually engage: core-point probes cap
            // out at min_pts, which exact full scans never do
            let exits = |s: &[(u32, ExecutorStats)]| -> u64 {
                s.iter().map(|(_, st)| st.kernel.early_exits).sum()
            };
            assert_eq!(exits(&full.stats), 0, "{name}: exact full scans never cap");
            assert!(
                exits(&fast.stats) > 0,
                "{name}: no count probe ever reached min_pts for {kernel:?}"
            );
        }
    }
}

#[test]
fn kernel_counters_reach_the_run_result_and_trace() {
    let (data, params) = random_dataset();
    let out = run_config(&data, params, KernelConfig::default(), 1, 1);
    let total: u64 = out.stats.iter().map(|(_, s)| s.kernel.rows_scanned).sum();
    assert!(total > 0, "exact runs over a BkdTree must count scanned rows");
    let kernel_events = out.trace.events.iter().filter(|e| e.kind.category() == "kernel").count();
    assert_eq!(kernel_events, PARTITIONS, "one TaskKernel event per task");
}
