//! Geospatial hotspot detection — the classic DBSCAN motivation: find
//! arbitrarily-shaped dense regions (e.g. ride-pickup hotspots in a
//! city grid) and ignore background noise, without knowing the number
//! of hotspots in advance.
//!
//! Synthesizes a city: two compact hotspots, one elongated "avenue"
//! (an arbitrary-shaped cluster k-means could not represent), and
//! uniform background traffic. Clusters with the paper's partitioned
//! DBSCAN and reports each hotspot's centroid and extent.
//!
//! Run: `cargo run --release --example geospatial_hotspots`

use scalable_dbscan::dbscan::Label;
use scalable_dbscan::prelude::*;
use std::sync::Arc;

/// Tiny deterministic LCG so the example needs no rand dependency.
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

fn main() {
    let mut rng = Lcg(0xC0FFEE);
    let mut rows: Vec<Vec<f64>> = Vec::new();

    // hotspot A: train station plaza (compact, very dense)
    for _ in 0..300 {
        rows.push(vec![rng.uniform(10.0, 11.0), rng.uniform(20.0, 21.0)]);
    }
    // hotspot B: stadium entrance
    for _ in 0..200 {
        rows.push(vec![rng.uniform(40.0, 41.5), rng.uniform(5.0, 6.0)]);
    }
    // the "avenue": a long thin strip — an arbitrarily shaped cluster
    for i in 0..400 {
        let t = i as f64 / 400.0;
        rows.push(vec![15.0 + 30.0 * t + rng.uniform(-0.3, 0.3), 35.0 + rng.uniform(-0.3, 0.3)]);
    }
    // background noise across the whole city
    for _ in 0..150 {
        rows.push(vec![rng.uniform(0.0, 60.0), rng.uniform(0.0, 45.0)]);
    }
    let data = Arc::new(Dataset::from_rows(rows));

    let params = DbscanParams::new(0.8, 8).expect("valid parameters");
    let ctx = Context::new(ClusterConfig::local(4));
    let result = SparkDbscan::new(params).run(&ctx, Arc::clone(&data));
    let clustering = &result.clustering;

    println!("pickups analyzed:  {}", data.len());
    println!("hotspots found:    {}", clustering.num_clusters());
    println!("background noise:  {}", clustering.noise_count());
    println!();

    for (cluster, size) in clustering.cluster_sizes() {
        let members: Vec<&[f64]> = clustering
            .labels
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == Label::Cluster(cluster))
            .map(|(i, _)| data.row(i))
            .collect();
        let centroid: Vec<f64> = (0..2)
            .map(|k| members.iter().map(|m| m[k]).sum::<f64>() / members.len() as f64)
            .collect();
        let extent: Vec<f64> = (0..2)
            .map(|k| {
                let lo = members.iter().map(|m| m[k]).fold(f64::INFINITY, f64::min);
                let hi = members.iter().map(|m| m[k]).fold(f64::NEG_INFINITY, f64::max);
                hi - lo
            })
            .collect();
        println!(
            "hotspot {cluster}: {size:4} pickups, centroid ({:5.1}, {:5.1}), extent {:.1} x {:.1}",
            centroid[0], centroid[1], extent[0], extent[1]
        );
    }

    // The avenue must come out as ONE cluster despite being 30 units
    // long with eps = 0.8 — density-reachability chains it together.
    let sizes: Vec<usize> = clustering.cluster_sizes().values().copied().collect();
    assert_eq!(clustering.num_clusters(), 3, "station, stadium, avenue");
    assert!(sizes.iter().any(|&s| s >= 380), "the avenue stayed in one piece");
    println!("\nthe elongated avenue was recovered as a single cluster — the");
    println!("arbitrary-shape property the paper's introduction leads with.");
}
