//! Anomaly detection in high-dimensional telemetry — DBSCAN's second
//! classic use: points that end up as *noise* are the anomalies.
//!
//! Synthesizes 10-dimensional "flow feature" vectors (the paper's d=10)
//! with a few behavioural baselines (normal traffic modes) and a set of
//! injected anomalies far from every mode. Uses the hardened exact
//! configuration and validates against the sequential reference.
//!
//! Run: `cargo run --release --example network_anomaly`

use scalable_dbscan::datagen::{ClusterGenerator, GeneratorParams};
use scalable_dbscan::dbscan::{core_labels_equivalent, Label};
use scalable_dbscan::prelude::*;
use std::sync::Arc;

fn main() {
    // 4 behavioural baselines + 8% scattered anomalies, d = 10.
    let mut params = GeneratorParams::new(6000, 10, 4, 0xBEEF);
    params.noise_fraction = 0.08;
    params.sigma = 8.0;
    let (data, truth) = ClusterGenerator::new(params).generate();
    let data = Arc::new(data);

    let dbscan_params = DbscanParams::paper(); // eps = 25, minpts = 5
    let ctx = Context::new(ClusterConfig::local(8));
    let result = SparkDbscan::new(dbscan_params)
        .exact() // per-boundary-edge SEEDs + union-find merge
        .run(&ctx, Arc::clone(&data));
    let clustering = &result.clustering;

    println!("flows analyzed:        {}", data.len());
    println!("behaviour modes found: {}", clustering.num_clusters());
    println!("flagged anomalies:     {}", clustering.noise_count());

    // score against the generator's ground truth
    let mut true_pos = 0usize; // injected anomaly flagged as noise
    let mut false_neg = 0usize; // injected anomaly absorbed by a mode
    let mut false_pos = 0usize; // normal flow flagged as noise
    for (i, label) in clustering.labels.iter().enumerate() {
        match (truth.source[i].is_none(), *label == Label::Noise) {
            (true, true) => true_pos += 1,
            (true, false) => false_neg += 1,
            (false, true) => false_pos += 1,
            (false, false) => {}
        }
    }
    let injected = true_pos + false_neg;
    println!();
    println!("injected anomalies:    {injected}");
    println!(
        "detected (recall):     {true_pos} ({:.1}%)",
        100.0 * true_pos as f64 / injected as f64
    );
    println!("missed:                {false_neg}");
    println!("false alarms:          {false_pos}");

    // high-dimensional sanity: detection must be strong on this data
    assert!(true_pos as f64 >= 0.9 * injected as f64, "recall too low");
    assert_eq!(clustering.num_clusters(), 4, "all four behaviour modes found");

    // and the distributed run must match the single-machine reference
    let sequential = SequentialDbscan::new(dbscan_params).run(data);
    assert!(core_labels_equivalent(clustering, &sequential));
    println!("\ndistributed result matches sequential DBSCAN on core points ✔");
}
