//! The whole system end to end, exactly like the paper's deployment
//! story:
//!
//! 1. generate a Table-I-style dataset and store it as CSV in the
//!    mini-DFS (HDFS stand-in) with 3-way replication;
//! 2. read it back as an RDD of lines (one partition per DFS block),
//!    parse into points — "read an input file from HDFS and generate
//!    RDDs" (Algorithm 2, line 1);
//! 3. run the partitioned SEED-based DBSCAN;
//! 4. kill a datanode *and* inject executor task failures, re-run, and
//!    verify the result is unchanged — the fault-tolerance argument the
//!    paper opens with;
//! 5. compare against the MapReduce baseline.
//!
//! Run: `cargo run --release --example full_pipeline`

use scalable_dbscan::datagen::{self, StandardDataset};
use scalable_dbscan::dbscan::{core_labels_equivalent, MrDbscan};
use scalable_dbscan::dfs::{DfsCluster, DfsConfig};
use scalable_dbscan::prelude::*;
use std::sync::Arc;

fn main() {
    // ---- 1. data into the DFS -------------------------------------
    let spec = StandardDataset::C10k.scaled_spec(8); // 1250 points
    let (dataset, _) = spec.generate();
    let dfs = Arc::new(
        DfsCluster::new(DfsConfig { num_datanodes: 4, replication: 3, block_size: 32 * 1024 })
            .expect("valid dfs config"),
    );
    datagen::write_dataset_to_dfs(&dfs, "/data/c10k.csv", &dataset).expect("write to dfs");
    let stat = dfs.stat("/data/c10k.csv").expect("stat");
    println!(
        "stored {} bytes in {} blocks across {} datanodes (replication 3)",
        stat.len,
        stat.num_blocks,
        dfs.num_datanodes()
    );

    // ---- 2. RDD of lines -> points --------------------------------
    let ctx = Context::new(ClusterConfig::local(4));
    let lines = ctx.text_file(Arc::clone(&dfs), "/data/c10k.csv").expect("open rdd");
    println!("text RDD: {} partitions (one per DFS block)", lines.num_partitions());
    let rows: Vec<Vec<f64>> = lines
        .map(|l| datagen::parse_csv_row(&l).expect("well-formed CSV"))
        .collect()
        .expect("parse job");
    let data = Arc::new(Dataset::from_rows(rows));
    assert_eq!(data.len(), dataset.len(), "every line read exactly once");

    // ---- 3. cluster -------------------------------------------------
    let params = DbscanParams::new(spec.eps, spec.min_pts).expect("Table I params");
    let clean = SparkDbscan::new(params).run(&ctx, Arc::clone(&data));
    println!(
        "clean run: {} clusters, {} noise, {} partial clusters, {} shuffle records",
        clean.clustering.num_clusters(),
        clean.clustering.noise_count(),
        clean.num_partial_clusters,
        clean.shuffle_records
    );

    // ---- 4. chaos run ----------------------------------------------
    dfs.kill_datanode(0).expect("kill datanode");
    let chaos_cfg = ClusterConfig::local(4)
        .with_fault(scalable_dbscan::engine::FaultConfig {
            task_failure_prob: 0.5,
            max_injected_failures_per_task: 2,
        })
        .with_max_attempts(4);
    let chaos_ctx = Context::new(chaos_cfg);
    let lines = chaos_ctx.text_file(Arc::clone(&dfs), "/data/c10k.csv").expect("reopen");
    let rows: Vec<Vec<f64>> = lines
        .map(|l| datagen::parse_csv_row(&l).expect("well-formed CSV"))
        .collect()
        .expect("parse despite dead datanode");
    let data2 = Arc::new(Dataset::from_rows(rows));
    let chaos = SparkDbscan::new(params).run(&chaos_ctx, Arc::clone(&data2));
    let retried = chaos_ctx.job_metrics().iter().map(|j| j.failed_attempts()).sum::<usize>();
    println!("chaos run: datanode 0 dead, {retried} task attempts failed and were retried");
    assert_eq!(
        chaos.clustering.canonicalize().labels,
        clean.clustering.canonicalize().labels,
        "failures must not change the answer"
    );
    println!("chaos result identical to clean result ✔");

    // ---- 5. MapReduce baseline --------------------------------------
    let mr = MrDbscan::new(params, 4).run(Arc::clone(&data), 4).expect("mapreduce run");
    assert!(core_labels_equivalent(&mr.clustering, &clean.clustering));
    println!(
        "MapReduce baseline agrees; it spilled {} bytes to disk (Spark path: 0)",
        mr.spilled_bytes
    );

    // and everything agrees with the sequential oracle
    let seq = SequentialDbscan::new(params).run(data);
    assert!(core_labels_equivalent(&clean.clustering, &seq));
    println!("all three implementations agree with sequential DBSCAN ✔");
}
