//! Quickstart: cluster a small 2-d dataset with the paper's parallel
//! DBSCAN and inspect the result.
//!
//! Run: `cargo run --release --example quickstart`

use scalable_dbscan::prelude::*;
use std::sync::Arc;

fn main() {
    // Three dense blobs plus a few scattered outliers.
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (cx, cy) in [(0.0, 0.0), (8.0, 8.0), (0.0, 9.0)] {
        for i in 0..40 {
            let dx = (i % 8) as f64 * 0.1;
            let dy = (i / 8) as f64 * 0.1;
            rows.push(vec![cx + dx, cy + dy]);
        }
    }
    rows.push(vec![50.0, 50.0]);
    rows.push(vec![-40.0, 20.0]);
    let data = Arc::new(Dataset::from_rows(rows));

    // eps-neighborhood radius 0.5, at least 4 points to be "dense".
    let params = DbscanParams::new(0.5, 4).expect("valid parameters");

    // A local in-process "cluster" with 4 executors; the algorithm uses
    // one index-range partition per executor, exactly like the paper.
    let ctx = Context::new(ClusterConfig::local(4));
    let result = SparkDbscan::new(params).run(&ctx, Arc::clone(&data));

    println!("points:            {}", data.len());
    println!("clusters found:    {}", result.clustering.num_clusters());
    println!("noise points:      {}", result.clustering.noise_count());
    println!("core points:       {}", result.clustering.core_count());
    println!("partial clusters:  {}", result.num_partial_clusters);
    println!("merge operations:  {}", result.merge_ops);
    println!("shuffle records:   {} (zero by design)", result.shuffle_records);
    println!(
        "kd-tree build:     {:?}  executors: {:?}  merge: {:?}",
        result.timings.kdtree_build, result.timings.executor_wall, result.timings.merge
    );

    // Cross-check against the sequential reference implementation.
    let sequential = SequentialDbscan::new(params).run(data);
    let same = scalable_dbscan::dbscan::core_labels_equivalent(&result.clustering, &sequential);
    println!("matches sequential DBSCAN on core points: {same}");
    assert!(same);
    assert_eq!(result.clustering.num_clusters(), 3);
    assert_eq!(result.clustering.noise_count(), 2);
}
