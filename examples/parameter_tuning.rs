//! Choosing DBSCAN parameters and using the library's extensions:
//!
//! 1. estimate `eps` from the data with the k-distance knee heuristic
//!    (Ester et al. 1996 §4.2 — the paper takes eps=25 as given, a real
//!    user has to find it);
//! 2. cluster with the paper's algorithm, then again with **spatial
//!    pre-partitioning** (the paper's stated future work) and compare
//!    the partial-cluster/merge workload;
//! 3. keep the clustering **incrementally** up to date as new points
//!    stream in (the MR-IDBSCAN direction the paper cites).
//!
//! Run: `cargo run --release --example parameter_tuning`

use scalable_dbscan::datagen::{ClusterGenerator, GeneratorParams};
use scalable_dbscan::dbscan::{suggest_eps, IncrementalDbscan, SequentialDbscan};
use scalable_dbscan::prelude::*;
use std::sync::Arc;

fn main() {
    // unlabeled data: 5 blobs + noise in 6 dimensions
    let mut gen_params = GeneratorParams::new(4000, 6, 5, 0x7A57E);
    gen_params.noise_fraction = 0.10;
    let (data, _) = ClusterGenerator::new(gen_params).generate();
    let data = Arc::new(data);

    // ---- 1. estimate eps --------------------------------------------
    let min_pts = 5;
    let eps = suggest_eps(&data, min_pts).expect("enough data to estimate");
    println!("k-distance knee suggests eps = {eps:.2} for min_pts = {min_pts}");
    let params = DbscanParams::new(eps, min_pts).expect("estimated params are valid");

    let reference = SequentialDbscan::new(params).run(Arc::clone(&data));
    println!(
        "sequential DBSCAN at the suggested eps: {} clusters, {} noise",
        reference.num_clusters(),
        reference.noise_count()
    );
    assert_eq!(reference.num_clusters(), 5, "the knee found all five blobs");

    // ---- 2. spatial pre-partitioning (future work) -------------------
    let ctx = Context::new(ClusterConfig::local(8));
    let plain = SparkDbscan::new(params).partitions(8).run(&ctx, Arc::clone(&data));
    let zordered = SparkDbscan::new(params)
        .partitions(8)
        .spatial_partitioning(true)
        .run(&ctx, Arc::clone(&data));
    println!();
    println!(
        "index-range partitions:   {} partial clusters, {} merge ops",
        plain.num_partial_clusters, plain.merge_ops
    );
    println!(
        "Z-order partitions:       {} partial clusters, {} merge ops (reorder cost {:?})",
        zordered.num_partial_clusters, zordered.merge_ops, zordered.timings.reorder
    );
    assert!(zordered.num_partial_clusters < plain.num_partial_clusters);

    // ---- 3. incremental maintenance ----------------------------------
    println!();
    let mut live = IncrementalDbscan::new(params, data.dim());
    for (_, row) in data.iter() {
        live.insert(row);
    }
    let before = live.clustering();
    println!(
        "incremental after initial load: {} clusters, {} noise",
        before.num_clusters(),
        before.noise_count()
    );
    assert!(scalable_dbscan::dbscan::core_labels_equivalent(&before, &reference));

    // a new dense blob streams in, one point at a time
    for i in 0..60 {
        let row: Vec<f64> =
            (0..data.dim()).map(|k| 2_000.0 + (i % 8) as f64 * 2.0 + k as f64).collect();
        live.insert(&row);
    }
    let after = live.clustering();
    println!(
        "after streaming a new blob:     {} clusters, {} noise",
        after.num_clusters(),
        after.noise_count()
    );
    assert_eq!(after.num_clusters(), before.num_clusters() + 1, "new blob became a cluster");
    println!("\nincremental clustering tracked the stream without any re-run ✔");
}
